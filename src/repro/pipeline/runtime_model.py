"""Analytical Read Until sequencing-runtime model (paper Section 6, Figure 17b/c).

The model estimates how long a sequencing run takes to reach the coverage
goal on the target genome, as a function of the specimen's viral fraction,
read lengths, pore kinetics (capture time, translocation speed, ejection
time) and — crucially — the Read Until classifier's operating point:

* its recall decides how many target reads are wasted (ejected),
* its false-positive rate decides how many background reads are sequenced to
  full length, and
* the examined prefix plus the classification latency decide how many bases
  every ejected read still costs.

Evaluating the model over a threshold sweep produces the runtime-vs-threshold
curves of Figure 17b (lambda phage) and 17c (SARS-CoV-2); evaluating it on
the per-read decisions of a multi-stage filter quantifies the additional
saving of Section 4.6.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Iterable, List, Optional, Sequence

from repro.core.filter import FilterDecision
from repro.core.thresholds import ThresholdSweepResult


@dataclass(frozen=True)
class ReadUntilModelConfig:
    """Inputs of the analytical runtime model."""

    genome_length_bases: int = 30_000
    coverage: float = 30.0
    viral_fraction: float = 0.01
    mean_target_read_bases: float = 4_000.0
    mean_background_read_bases: float = 8_000.0
    capture_time_s: float = 1.0
    bases_per_second: float = 450.0
    samples_per_base: float = 10.0
    ejection_time_s: float = 0.5
    decision_prefix_samples: int = 2000
    decision_latency_s: float = 0.0
    n_channels: int = 512

    def __post_init__(self) -> None:
        if self.genome_length_bases <= 0:
            raise ValueError("genome_length_bases must be positive")
        if self.coverage <= 0:
            raise ValueError("coverage must be positive")
        if not 0.0 < self.viral_fraction < 1.0:
            raise ValueError("viral_fraction must be strictly between 0 and 1")
        if self.mean_target_read_bases <= 0 or self.mean_background_read_bases <= 0:
            raise ValueError("mean read lengths must be positive")
        if self.bases_per_second <= 0 or self.samples_per_base <= 0:
            raise ValueError("bases_per_second and samples_per_base must be positive")
        if self.capture_time_s < 0 or self.ejection_time_s < 0 or self.decision_latency_s < 0:
            raise ValueError("times must be non-negative")
        if self.decision_prefix_samples <= 0:
            raise ValueError("decision_prefix_samples must be positive")
        if self.n_channels <= 0:
            raise ValueError("n_channels must be positive")

    # ------------------------------------------------------------ derived values
    @property
    def target_reads_needed(self) -> float:
        """Kept target reads required to reach the coverage goal."""
        return self.coverage * self.genome_length_bases / self.mean_target_read_bases

    @property
    def decision_bases(self) -> float:
        """Bases sequenced before an ejection takes effect."""
        prefix_bases = self.decision_prefix_samples / self.samples_per_base
        latency_bases = self.decision_latency_s * self.bases_per_second
        return prefix_bases + latency_bases

    def read_time_s(self, n_bases: float) -> float:
        """Pore-occupancy time of sequencing ``n_bases`` (plus capture)."""
        return self.capture_time_s + n_bases / self.bases_per_second

    def ejected_read_time_s(self, full_read_bases: float) -> float:
        """Pore-occupancy time of a read ejected after the decision prefix."""
        sequenced = min(self.decision_bases, full_read_bases)
        return self.capture_time_s + sequenced / self.bases_per_second + self.ejection_time_s

    def with_(self, **changes) -> "ReadUntilModelConfig":
        return replace(self, **changes)


def sequencing_runtime_s(
    config: ReadUntilModelConfig,
    recall: float = 1.0,
    false_positive_rate: float = 0.0,
    use_read_until: bool = True,
) -> float:
    """Wall-clock time to reach the coverage goal.

    Without Read Until every captured read is sequenced to full length; with
    Read Until target reads are kept with probability ``recall`` and
    background reads are (incorrectly) kept with probability
    ``false_positive_rate``.
    """
    if not 0.0 <= recall <= 1.0:
        raise ValueError("recall must be within [0, 1]")
    if not 0.0 <= false_positive_rate <= 1.0:
        raise ValueError("false_positive_rate must be within [0, 1]")

    p = config.viral_fraction
    if use_read_until:
        if recall <= 0.0:
            return float("inf")
        kept_target_per_slot = p * recall
        target_time = recall * config.read_time_s(config.mean_target_read_bases) + (
            1.0 - recall
        ) * config.ejected_read_time_s(config.mean_target_read_bases)
        background_time = false_positive_rate * config.read_time_s(
            config.mean_background_read_bases
        ) + (1.0 - false_positive_rate) * config.ejected_read_time_s(
            config.mean_background_read_bases
        )
    else:
        kept_target_per_slot = p
        target_time = config.read_time_s(config.mean_target_read_bases)
        background_time = config.read_time_s(config.mean_background_read_bases)

    expected_slot_time = p * target_time + (1.0 - p) * background_time
    slots_needed = config.target_reads_needed / kept_target_per_slot
    total_pore_seconds = slots_needed * expected_slot_time
    return total_pore_seconds / config.n_channels


def read_until_speedup(
    config: ReadUntilModelConfig,
    recall: float,
    false_positive_rate: float,
) -> float:
    """Runtime ratio control / Read Until at one operating point."""
    with_read_until = sequencing_runtime_s(config, recall, false_positive_rate, use_read_until=True)
    without = sequencing_runtime_s(config, use_read_until=False)
    if with_read_until == 0:
        return float("inf")
    return without / with_read_until


def runtime_vs_threshold(
    sweep: ThresholdSweepResult,
    config: ReadUntilModelConfig,
) -> List[Dict[str, float]]:
    """Figure 17b/c: modelled runtime at every threshold of an accuracy sweep."""
    rows: List[Dict[str, float]] = []
    for point in sweep:
        runtime = sequencing_runtime_s(
            config,
            recall=point.recall,
            false_positive_rate=point.false_positive_rate,
        )
        rows.append(
            {
                "threshold": point.threshold,
                "recall": point.recall,
                "false_positive_rate": point.false_positive_rate,
                "runtime_s": runtime,
                "runtime_hours": runtime / 3600.0,
            }
        )
    return rows


def best_runtime(rows: Sequence[Dict[str, float]]) -> Dict[str, float]:
    """The minimum-runtime operating point of a runtime-vs-threshold curve."""
    if not rows:
        raise ValueError("no runtime rows provided")
    return min(rows, key=lambda row: row["runtime_s"])


def runtime_from_decisions(
    decisions: Iterable[FilterDecision],
    is_target: Iterable[bool],
    config: ReadUntilModelConfig,
    full_read_samples: Optional[Iterable[int]] = None,
) -> float:
    """Runtime estimated from observed per-read decisions (multi-stage filters).

    Instead of a single (recall, false-positive-rate) pair, this uses each
    read's actual decision and the number of samples it consumed before that
    decision, so multi-stage filters — where different reads are ejected
    after different prefix lengths — are modelled faithfully.
    """
    decisions = list(decisions)
    truths = list(is_target)
    if len(decisions) != len(truths):
        raise ValueError("decisions and is_target must have equal length")
    if not decisions:
        raise ValueError("no decisions provided")
    samples_list = (
        list(full_read_samples) if full_read_samples is not None else [None] * len(decisions)
    )
    if len(samples_list) != len(decisions):
        raise ValueError("full_read_samples must match decisions length")

    target_times: List[float] = []
    background_times: List[float] = []
    kept_targets = 0
    n_targets = 0
    latency_bases = config.decision_latency_s * config.bases_per_second
    for decision, target, full_samples in zip(decisions, truths, samples_list):
        if target:
            n_targets += 1
        full_bases = (
            config.mean_target_read_bases if target else config.mean_background_read_bases
        )
        if full_samples is not None:
            full_bases = full_samples / config.samples_per_base
        if decision.accept:
            time_s = config.read_time_s(full_bases)
            if target:
                kept_targets += 1
        else:
            decision_bases = decision.samples_used / config.samples_per_base + latency_bases
            sequenced = min(decision_bases, full_bases)
            time_s = config.capture_time_s + sequenced / config.bases_per_second + config.ejection_time_s
        (target_times if target else background_times).append(time_s)

    if n_targets == 0 or kept_targets == 0:
        return float("inf")
    recall = kept_targets / n_targets
    mean_target_time = sum(target_times) / len(target_times)
    mean_background_time = (
        sum(background_times) / len(background_times) if background_times else 0.0
    )
    p = config.viral_fraction
    expected_slot_time = p * mean_target_time + (1.0 - p) * mean_background_time
    slots_needed = config.target_reads_needed / (p * recall)
    return slots_needed * expected_slot_time / config.n_channels
