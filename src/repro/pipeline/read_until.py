"""End-to-end Read Until pipeline orchestration (paper Figure 4).

Connects the pieces: a read source (the sequencer simulation), a Read Until
classifier (SquiggleFilter, the basecall+align baseline, or a multi-stage
filter), the event-driven sequencing session, and the off-critical-path
reference-guided assembly of the kept reads. This is the module the
examples use to run "a whole virus detection" from specimen to consensus
genome.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Union

import numpy as np

from repro.assembly.consensus import AssemblyResult, ReferenceGuidedAssembler
from repro.baselines.basecall_align import BasecallAlignClassifier
from repro.core.filter import FilterDecision, MultiStageSquiggleFilter, SquiggleFilter
from repro.sequencer.reads import Read
from repro.sequencer.run import MinIONParameters, ReadUntilSession, SessionSummary
from repro.analysis.metrics import ClassificationCounts, confusion_from_labels

Classifier = Union[SquiggleFilter, MultiStageSquiggleFilter, BasecallAlignClassifier]


@dataclass
class PipelineRunResult:
    """Everything one pipeline run produces."""

    session: SessionSummary
    confusion: ClassificationCounts
    assembly: Optional[AssemblyResult]
    classifier_name: str
    decision_latency_s: float

    @property
    def runtime_s(self) -> float:
        return self.session.total_time_s

    @property
    def recall(self) -> float:
        return self.confusion.recall

    @property
    def false_positive_rate(self) -> float:
        return self.confusion.false_positive_rate


class ReadUntilPipeline:
    """Run a Read Until experiment with a pluggable classifier."""

    def __init__(
        self,
        classifier: Classifier,
        target_genome: str,
        parameters: Optional[MinIONParameters] = None,
        decision_latency_s: Optional[float] = None,
        prefix_samples: int = 2000,
        assemble: bool = True,
        assembler: Optional[ReferenceGuidedAssembler] = None,
    ) -> None:
        self.classifier = classifier
        self.target_genome = target_genome
        self.parameters = parameters if parameters is not None else MinIONParameters()
        self.prefix_samples = prefix_samples
        self.assemble = assemble
        self.assembler = assembler
        if decision_latency_s is not None:
            self.decision_latency_s = decision_latency_s
        elif isinstance(classifier, BasecallAlignClassifier):
            self.decision_latency_s = classifier.decision_latency_s
        else:
            # SquiggleFilter hardware decision latency is tens of microseconds;
            # effectively zero on the Read Until timescale.
            self.decision_latency_s = 4.3e-5

    @property
    def classifier_name(self) -> str:
        return type(self.classifier).__name__

    # ------------------------------------------------------------------ plumbing
    def _decision_for_read(self, read: Read) -> FilterDecision:
        if isinstance(self.classifier, BasecallAlignClassifier):
            return self.classifier.classify_read(read, self.prefix_samples).as_filter_decision()
        if isinstance(self.classifier, MultiStageSquiggleFilter):
            return self.classifier.classify(read.signal_pa)
        return self.classifier.classify(read.signal_pa, prefix_samples=self.prefix_samples)

    def run(
        self,
        reads: Sequence[Read],
        target_bases_goal: Optional[int] = None,
    ) -> PipelineRunResult:
        """Process ``reads`` through Read Until and assemble the kept targets."""
        reads = list(reads)
        decisions: Dict[str, FilterDecision] = {}

        def classify_by_signal(prefix: np.ndarray) -> FilterDecision:
            # The session hands us the signal prefix; we match it back to the
            # read currently being processed via the closure below.
            raise RuntimeError("classify_by_signal must be bound per read")

        session = ReadUntilSession(
            classifier=classify_by_signal,
            parameters=self.parameters,
            decision_latency_s=self.decision_latency_s,
            prefix_samples=self.prefix_samples,
        )

        summary = SessionSummary(classifier_latency_s=self.decision_latency_s)
        kept_reads: List[Read] = []
        for read in reads:
            decision = self._decision_for_read(read)
            decisions[read.read_id] = decision
            session.classifier = lambda prefix, d=decision: d
            outcome = session.process_read(read)
            summary.outcomes.append(outcome)
            summary.total_time_s += outcome.sequencing_time_s
            if outcome.is_target and not outcome.ejected:
                summary.target_bases_kept += read.n_bases
            if not outcome.ejected:
                kept_reads.append(read)
            if target_bases_goal is not None and summary.target_bases_kept >= target_bases_goal:
                break

        processed = summary.outcomes
        confusion = confusion_from_labels(
            truths=[outcome.is_target for outcome in processed],
            predictions=[not outcome.ejected for outcome in processed],
        )
        assembly: Optional[AssemblyResult] = None
        if self.assemble and kept_reads:
            assembler = self.assembler or ReferenceGuidedAssembler(self.target_genome)
            assembly = assembler.assemble(kept_reads)
        return PipelineRunResult(
            session=summary,
            confusion=confusion,
            assembly=assembly,
            classifier_name=self.classifier_name,
            decision_latency_s=self.decision_latency_s,
        )


def compare_classifiers(
    reads: Sequence[Read],
    pipelines: Dict[str, ReadUntilPipeline],
    target_bases_goal: Optional[int] = None,
) -> Dict[str, PipelineRunResult]:
    """Run several pipelines over the same reads (used by examples and benches)."""
    return {
        name: pipeline.run(reads, target_bases_goal=target_bases_goal)
        for name, pipeline in pipelines.items()
    }
