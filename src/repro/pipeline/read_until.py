"""End-to-end Read Until pipeline orchestration (paper Figure 4).

The pipeline wires a read source to the *streaming* Read Until interface:
every run executes through :class:`~repro.sequencer.read_until_api.ReadUntilSimulator`,
the faithful chunk-level simulation of ONT's API. Classifiers speak the
:class:`~repro.pipeline.api.ReadUntilClassifier` protocol —
``begin_read(read_id)`` then ``on_chunk(SignalChunk) -> Action`` — so every
classifier sees signal incrementally, exactly as the paper's system does:
SquiggleFilter decides as soon as its prefix has streamed in, the multi-stage
filter ejects clear non-targets on early chunks, and the basecall+align
baseline pays its decision latency in extra sequenced samples.

Legacy classifier objects (anything with ``classify(signal, ...)`` or
``classify_read(read, ...)``) are adapted automatically via
:func:`repro.pipeline.api.as_streaming_classifier`, so existing call sites
keep working. Pipelines can also be constructed by name from a plain config
mapping with :func:`repro.pipeline.api.build_pipeline`. Reads that survive
the filter are assembled off the critical path into a consensus genome; this
is the module the examples use to run "a whole virus detection" from specimen
to consensus.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from math import ceil
from typing import Dict, List, Optional, Sequence, Set

from repro.analysis.metrics import ClassificationCounts, confusion_from_labels
from repro.assembly.consensus import AssemblyResult, ReferenceGuidedAssembler
from repro.pipeline.api import (
    ACCEPT,
    DEFAULT_HARDWARE_LATENCY_S,
    Action,
    as_streaming_classifier,
    supports_chunk_batching,
)
from repro.sequencer.read_until_api import ReadUntilSimulator, SignalChunk
from repro.sequencer.reads import Read
from repro.sequencer.run import MinIONParameters, ReadOutcome, SessionSummary


class _CoverageGoalReached(Exception):
    """Internal control flow: the kept-target-bases goal was met mid-stream."""


@dataclass
class PipelineRunResult:
    """Everything one pipeline run produces."""

    session: SessionSummary
    confusion: ClassificationCounts
    assembly: Optional[AssemblyResult]
    classifier_name: str
    decision_latency_s: float
    streaming: Dict[str, object] = field(default_factory=dict)

    @property
    def runtime_s(self) -> float:
        return self.session.total_time_s

    @property
    def recall(self) -> float:
        return self.confusion.recall

    @property
    def false_positive_rate(self) -> float:
        return self.confusion.false_positive_rate


class ReadUntilPipeline:
    """Run a Read Until experiment with a pluggable streaming classifier.

    ``classifier`` may implement the streaming protocol directly or be any of
    the repository's whole-prefix classifiers (adapted automatically).
    ``chunk_samples`` controls the granularity the simulator streams at; by
    default it matches the classifier's earliest decision point so single-stage
    filters decide on their first chunk while multi-stage filters see one chunk
    per early stage.

    ``batch`` selects the execution engine for a run: ``None`` (default) uses
    the classifier's ``on_chunk_batch`` fast path whenever it is advertised —
    every undecided channel's chunk of a polling round classified by one
    vectorized wavefront — and falls back to per-read ``on_chunk`` otherwise;
    ``True`` requires the fast path (raising if the classifier cannot batch);
    ``False`` forces the per-read path. Both paths make identical decisions.
    """

    def __init__(
        self,
        classifier: object,
        target_genome: str,
        parameters: Optional[MinIONParameters] = None,
        decision_latency_s: Optional[float] = None,
        prefix_samples: int = 2000,
        assemble: bool = True,
        assembler: Optional[ReferenceGuidedAssembler] = None,
        chunk_samples: Optional[int] = None,
        n_channels: int = 1,
        max_chunks_per_read: Optional[int] = None,
        batch: Optional[bool] = None,
    ) -> None:
        if chunk_samples is not None and chunk_samples <= 0:
            raise ValueError("chunk_samples must be positive")
        if n_channels <= 0:
            raise ValueError("n_channels must be positive")
        self.classifier = classifier
        self.target_genome = target_genome
        self.parameters = parameters if parameters is not None else MinIONParameters()
        self.prefix_samples = prefix_samples
        self.assemble = assemble
        self.assembler = assembler
        self.chunk_samples = chunk_samples
        self.n_channels = n_channels
        self.max_chunks_per_read = max_chunks_per_read
        self.batch = batch
        if decision_latency_s is not None:
            self.decision_latency_s = decision_latency_s
        else:
            latency = getattr(classifier, "decision_latency_s", None)
            self.decision_latency_s = (
                float(latency) if latency is not None else DEFAULT_HARDWARE_LATENCY_S
            )

    @property
    def classifier_name(self) -> str:
        return type(self.classifier).__name__

    def run(
        self,
        reads: Sequence[Read],
        target_bases_goal: Optional[int] = None,
    ) -> PipelineRunResult:
        """Stream ``reads`` through Read Until and assemble the kept targets.

        The chunk simulator is the single execution engine: chunks arrive per
        channel, the streaming classifier returns accept/eject/wait actions,
        and ejections pay the classifier's decision latency in extra sequenced
        samples before the pore frees up.
        """
        reads = list(reads)
        read_map: Dict[str, Read] = {read.read_id: read for read in reads}
        streaming = as_streaming_classifier(
            self.classifier, prefix_samples=self.prefix_samples, read_lookup=read_map.get
        )
        chunk_samples = self.chunk_samples
        if chunk_samples is None:
            chunk_samples = max(1, min(streaming.min_decision_samples, self.prefix_samples))
        max_chunks = self.max_chunks_per_read
        if max_chunks is None:
            # Enough chunks for the latest decision point, plus one chunk of
            # slack so prefixes that straddle a boundary still resolve.
            max_chunks = ceil(streaming.max_decision_samples / chunk_samples) + 1

        simulator = ReadUntilSimulator(
            reads,
            parameters=self.parameters,
            chunk_samples=chunk_samples,
            n_channels=self.n_channels,
            max_chunks_per_read=max_chunks,
        )

        batched = supports_chunk_batching(streaming)
        if self.batch and not batched:
            raise ValueError(
                f"batch=True but {type(streaming).__name__} does not expose "
                "on_chunk_batch; use a batch-capable classifier "
                "(e.g. 'batch_squigglefilter') or batch=False"
            )
        use_batch = batched if self.batch is None else bool(self.batch)

        actions: Dict[str, Action] = {}
        started: Set[str] = set()
        goal_bases = 0
        goal_hit = False

        def record(chunk: SignalChunk, action: Action) -> str:
            nonlocal goal_bases, goal_hit
            if action.is_terminal:
                actions[chunk.read_id] = action
                if action.kind == ACCEPT and target_bases_goal is not None:
                    read = read_map[chunk.read_id]
                    if read.is_target:
                        goal_bases += read.n_bases
                        if goal_bases >= target_bases_goal:
                            goal_hit = True
            return action.to_simulator_action()

        def begin(chunk: SignalChunk) -> None:
            if chunk.read_id not in started:
                started.add(chunk.read_id)
                streaming.begin_read(chunk.read_id)

        def decide(chunk: SignalChunk) -> str:
            begin(chunk)
            verb = record(chunk, streaming.on_chunk(chunk))
            if goal_hit:
                raise _CoverageGoalReached
            return verb

        def decide_batch(chunks: Sequence[SignalChunk]) -> List[str]:
            # The goal check stops the session *between* rounds: every action
            # of the round that hit the goal is still returned so the
            # simulator applies it — aborting mid-round would record
            # decisions whose effect never reached the pore state.
            if goal_hit:
                raise _CoverageGoalReached
            for chunk in chunks:
                begin(chunk)
            round_actions = streaming.on_chunk_batch(chunks)
            return [record(chunk, action) for chunk, action in zip(chunks, round_actions)]

        # Upper-bound the polls one read can consume (capture dead time,
        # chunk delivery of the whole read, ejection dead time, plus the
        # undecided-chunk budget), scaled by the worst-case round-robin depth.
        params = self.parameters
        chunk_duration_s = chunk_samples / params.sample_rate_hz
        longest_read = max((read.n_samples for read in reads), default=0)
        polls_per_read = (
            ceil(params.capture_time_s / chunk_duration_s)
            + ceil((params.ejection_time_s + self.decision_latency_s) / chunk_duration_s)
            + ceil(longest_read / chunk_samples)
            + max_chunks
            + 2
        )
        max_iterations = (ceil(len(reads) / self.n_channels) + 1) * polls_per_read + 10

        try:
            if use_batch:
                stream_summary = simulator.run_batch_client(
                    decide_batch,
                    decision_latency_s=self.decision_latency_s,
                    max_iterations=max_iterations,
                )
            else:
                stream_summary = simulator.run_client(
                    decide,
                    decision_latency_s=self.decision_latency_s,
                    max_iterations=max_iterations,
                )
        except _CoverageGoalReached:
            stream_summary = simulator.summary()
        goal_reached = goal_hit
        if not goal_reached and not simulator.finished:
            raise RuntimeError(
                f"Read Until session did not drain within {max_iterations} polls "
                f"({len(reads)} reads, chunk_samples={chunk_samples}); this indicates "
                "a bug in the iteration budget, not a property of the input"
            )
        # Release per-read state for reads that ended without a terminal
        # action (e.g. capped by max_chunks_per_read).
        end_read = getattr(streaming, "end_read", None)
        if end_read is not None:
            for read_id in started - set(actions):
                end_read(read_id)
        summary = SessionSummary(classifier_latency_s=self.decision_latency_s)
        finished: Set[str] = set()
        for entry in simulator.action_log:
            finished.add(entry.read_id)
            action = actions.get(entry.read_id)
            ejected = entry.action == "unblocked"
            time_s = params.capture_time_s + params.samples_to_seconds(entry.samples_sequenced)
            if ejected:
                time_s += params.ejection_time_s
            summary.outcomes.append(
                ReadOutcome(
                    read=read_map[entry.read_id],
                    decision=action.as_filter_decision() if action is not None else None,
                    sequenced_samples=entry.samples_sequenced,
                    sequencing_time_s=time_s,
                    ejected=ejected,
                )
            )
        # Reads already accepted but still sequencing when the coverage goal
        # stopped the run count as fully kept, as in a real run wind-down.
        for read_id, action in actions.items():
            if read_id in finished or action.kind != ACCEPT:
                continue
            read = read_map[read_id]
            summary.outcomes.append(
                ReadOutcome(
                    read=read,
                    decision=action.as_filter_decision(),
                    sequenced_samples=read.n_samples,
                    sequencing_time_s=params.capture_time_s
                    + params.samples_to_seconds(read.n_samples),
                    ejected=False,
                )
            )

        kept_reads: List[Read] = []
        for outcome in summary.outcomes:
            summary.total_time_s += outcome.sequencing_time_s
            if not outcome.ejected:
                kept_reads.append(outcome.read)
                if outcome.is_target:
                    summary.target_bases_kept += outcome.read.n_bases

        confusion = confusion_from_labels(
            truths=[outcome.is_target for outcome in summary.outcomes],
            predictions=[not outcome.ejected for outcome in summary.outcomes],
        )
        stream_summary = dict(stream_summary)
        stream_summary["batched"] = use_batch
        # Panel-mode classifiers tag terminal actions with the matched
        # target; surface the per-target accept tally so multi-virus runs
        # report which panel members were actually seen.
        if any(action.target is not None for action in actions.values()):
            per_target_accepts: Dict[str, int] = {}
            for action in actions.values():
                if action.kind == ACCEPT and action.target is not None:
                    per_target_accepts[action.target] = (
                        per_target_accepts.get(action.target, 0) + 1
                    )
            stream_summary["per_target_accepts"] = per_target_accepts
        engine = getattr(streaming, "engine", None)
        if engine is not None and hasattr(engine, "occupancy_trace"):
            # The per-round batch occupancy is the classification request
            # trace the ASIC multi-tile model replays
            # (TileScheduler.simulate_batch_trace).
            stream_summary["batch_occupancy"] = list(engine.occupancy_trace)
            stream_summary["peak_batch_lanes"] = engine.peak_occupancy
            stream_summary["mean_batch_lanes"] = engine.mean_occupancy
            stream_summary["chunk_duration_s"] = chunk_samples / params.sample_rate_hz
            stream_summary["backend"] = getattr(engine, "backend_name", "numpy")
            if getattr(engine, "n_targets", 1) > 1:
                stream_summary["targets"] = list(engine.target_names)
        assembly: Optional[AssemblyResult] = None
        if self.assemble and kept_reads:
            assembler = self.assembler or ReferenceGuidedAssembler(self.target_genome)
            assembly = assembler.assemble(kept_reads)
        return PipelineRunResult(
            session=summary,
            confusion=confusion,
            assembly=assembly,
            classifier_name=self.classifier_name,
            decision_latency_s=self.decision_latency_s,
            streaming=dict(stream_summary),
        )


def compare_classifiers(
    reads: Sequence[Read],
    pipelines: Dict[str, ReadUntilPipeline],
    target_bases_goal: Optional[int] = None,
) -> Dict[str, PipelineRunResult]:
    """Run several pipelines over the same reads (used by examples and benches)."""
    return {
        name: pipeline.run(reads, target_bases_goal=target_bases_goal)
        for name, pipeline in pipelines.items()
    }
