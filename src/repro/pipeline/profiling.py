"""Compute-time profiling of the conventional pipeline (paper Figure 5).

Figure 5 breaks the software pipeline's compute time into basecalling
(Guppy-lite), alignment (MiniMap2) and variant calling (Racon + Medaka) when
assembling a SARS-CoV-2 genome from specimens with 1 % and 0.1 % viral reads,
and finds basecalling dominates (~96 %).

The model here reproduces that accounting: every captured read has its prefix
basecalled and aligned for the Read Until decision, accepted reads are
basecalled in full and fed to the variant caller, and each stage's time is
its work divided by the measured stage throughput on the evaluated device.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.basecall.performance import basecaller_performance
from repro.pipeline.runtime_model import ReadUntilModelConfig

# Stage throughputs for the non-basecalling stages, expressed per read.
# Aligning a few-hundred-base read against a <100 kb viral reference is
# orders of magnitude cheaper than basecalling it (Section 3.2) — MiniMap2
# maps tens of thousands of such reads per second — and variant calling
# touches only the kept target reads.
ALIGN_READS_PER_S = 15_000.0
VARIANT_CALL_READS_PER_S = 150.0


@dataclass
class PipelineProfile:
    """Per-stage compute seconds and their fractions."""

    basecall_s: float
    align_s: float
    variant_call_s: float
    viral_fraction: float
    n_reads: float

    @property
    def total_s(self) -> float:
        return self.basecall_s + self.align_s + self.variant_call_s

    def fractions(self) -> Dict[str, float]:
        total = self.total_s
        if total == 0:
            return {"basecall": 0.0, "align": 0.0, "variant_call": 0.0}
        return {
            "basecall": self.basecall_s / total,
            "align": self.align_s / total,
            "variant_call": self.variant_call_s / total,
        }

    @property
    def basecall_fraction(self) -> float:
        return self.fractions()["basecall"]

    def as_rows(self) -> List[Dict[str, object]]:
        fractions = self.fractions()
        return [
            {
                "stage": stage,
                "seconds": seconds,
                "fraction": fractions[stage],
                "viral_fraction": self.viral_fraction,
            }
            for stage, seconds in (
                ("basecall", self.basecall_s),
                ("align", self.align_s),
                ("variant_call", self.variant_call_s),
            )
        ]


def profile_pipeline(
    config: Optional[ReadUntilModelConfig] = None,
    basecaller: str = "guppy_lite",
    device: str = "jetson_xavier",
    recall: float = 1.0,
    false_positive_rate: float = 0.0,
    align_reads_per_s: float = ALIGN_READS_PER_S,
    variant_call_reads_per_s: float = VARIANT_CALL_READS_PER_S,
) -> PipelineProfile:
    """Compute the Figure 5 breakdown for one specimen configuration.

    ``config.viral_fraction`` selects the 1 % or 0.1 % specimen. The decision
    prefix of every read is basecalled; kept reads (true positives plus false
    positives) are additionally basecalled to full length before variant
    calling.
    """
    model = config if config is not None else ReadUntilModelConfig()
    if align_reads_per_s <= 0 or variant_call_reads_per_s <= 0:
        raise ValueError("stage throughputs must be positive")

    performance = basecaller_performance(basecaller, device)
    basecall_bases_per_s = performance.read_until_bases_per_s

    p = model.viral_fraction
    kept_target_per_slot = p * recall
    if kept_target_per_slot <= 0:
        raise ValueError("recall and viral fraction must keep at least some target reads")
    n_reads = model.target_reads_needed / kept_target_per_slot
    n_target_kept = model.target_reads_needed
    n_background_kept = n_reads * (1.0 - p) * false_positive_rate

    prefix_bases = model.decision_bases
    # Decision basecalling for every read, full basecalling for kept reads.
    basecall_bases = n_reads * prefix_bases
    basecall_bases += n_target_kept * model.mean_target_read_bases
    basecall_bases += n_background_kept * model.mean_background_read_bases
    basecall_s = basecall_bases / basecall_bases_per_s

    align_s = n_reads / align_reads_per_s
    variant_call_s = (n_target_kept + n_background_kept) / variant_call_reads_per_s
    return PipelineProfile(
        basecall_s=basecall_s,
        align_s=align_s,
        variant_call_s=variant_call_s,
        viral_fraction=p,
        n_reads=n_reads,
    )


def profile_both_specimens(
    basecaller: str = "guppy_lite",
    device: str = "jetson_xavier",
    base_config: Optional[ReadUntilModelConfig] = None,
) -> Dict[float, PipelineProfile]:
    """The two bars of Figure 5: 1 % and 0.1 % viral-fraction specimens."""
    config = base_config if base_config is not None else ReadUntilModelConfig()
    profiles = {}
    for fraction in (0.01, 0.001):
        profiles[fraction] = profile_pipeline(
            config.with_(viral_fraction=fraction), basecaller=basecaller, device=device
        )
    return profiles
