"""Pipeline-level models: Read Until orchestration, profiling, runtime and scalability."""

from repro.pipeline.cost_model import SequencingCostConfig, experiment_cost, read_until_savings
from repro.pipeline.profiling import PipelineProfile, profile_pipeline
from repro.pipeline.read_until import ReadUntilPipeline, PipelineRunResult
from repro.pipeline.runtime_model import (
    ReadUntilModelConfig,
    runtime_from_decisions,
    runtime_vs_threshold,
    sequencing_runtime_s,
)
from repro.pipeline.scalability import ScalabilityPoint, scalability_analysis

__all__ = [
    "PipelineProfile",
    "PipelineRunResult",
    "ReadUntilModelConfig",
    "ReadUntilPipeline",
    "ScalabilityPoint",
    "SequencingCostConfig",
    "experiment_cost",
    "profile_pipeline",
    "runtime_from_decisions",
    "runtime_vs_threshold",
    "read_until_savings",
    "scalability_analysis",
    "sequencing_runtime_s",
]
