"""Pipeline-level models: Read Until orchestration, profiling, runtime and scalability."""

from repro.pipeline.api import (
    Action,
    BasecallAlignAdapter,
    MultiStageAdapter,
    ReadUntilClassifier,
    SingleStageAdapter,
    as_streaming_classifier,
    available_classifiers,
    build_pipeline,
    create_classifier,
    register_classifier,
)
from repro.pipeline.cost_model import SequencingCostConfig, experiment_cost, read_until_savings
from repro.pipeline.profiling import PipelineProfile, profile_pipeline
from repro.pipeline.read_until import ReadUntilPipeline, PipelineRunResult, compare_classifiers
from repro.pipeline.runtime_model import (
    ReadUntilModelConfig,
    runtime_from_decisions,
    runtime_vs_threshold,
    sequencing_runtime_s,
)
from repro.pipeline.scalability import ScalabilityPoint, scalability_analysis

__all__ = [
    "Action",
    "BasecallAlignAdapter",
    "MultiStageAdapter",
    "PipelineProfile",
    "PipelineRunResult",
    "ReadUntilClassifier",
    "ReadUntilModelConfig",
    "ReadUntilPipeline",
    "ScalabilityPoint",
    "SequencingCostConfig",
    "SingleStageAdapter",
    "as_streaming_classifier",
    "available_classifiers",
    "build_pipeline",
    "compare_classifiers",
    "create_classifier",
    "experiment_cost",
    "profile_pipeline",
    "register_classifier",
    "runtime_from_decisions",
    "runtime_vs_threshold",
    "read_until_savings",
    "scalability_analysis",
    "sequencing_runtime_s",
]
