"""Read Until scalability with growing sequencer throughput (paper Figure 21).

ONT's roadmap promises 10-100x more sequencing throughput per device. A Read
Until classifier that cannot keep up can only serve a fraction of the pores;
the remaining pores sequence everything, so the Read Until benefit erodes.
SquiggleFilter's throughput headroom (~114x a MinION) keeps the benefit
intact across the projected range; GPU basecalling loses it almost
immediately. This module computes that comparison.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.basecall.performance import MINION_MAX_BASES_PER_S, basecaller_performance
from repro.hardware.performance import accelerator_performance
from repro.pipeline.runtime_model import ReadUntilModelConfig, sequencing_runtime_s


@dataclass(frozen=True)
class ClassifierOperatingPoint:
    """A classifier's throughput ceiling and its classification quality."""

    name: str
    throughput_bases_per_s: float
    recall: float
    false_positive_rate: float
    decision_latency_s: float

    def __post_init__(self) -> None:
        if self.throughput_bases_per_s <= 0:
            raise ValueError("throughput_bases_per_s must be positive")
        if not 0.0 < self.recall <= 1.0:
            raise ValueError("recall must be in (0, 1]")
        if not 0.0 <= self.false_positive_rate <= 1.0:
            raise ValueError("false_positive_rate must be in [0, 1]")
        if self.decision_latency_s < 0:
            raise ValueError("decision_latency_s must be non-negative")


@dataclass
class ScalabilityPoint:
    """Read Until benefit of one classifier at one sequencer scale factor."""

    classifier: str
    scale_factor: float
    read_until_pore_fraction: float
    runtime_with_read_until_s: float
    runtime_without_read_until_s: float

    @property
    def speedup(self) -> float:
        if self.runtime_with_read_until_s <= 0:
            return float("inf")
        return self.runtime_without_read_until_s / self.runtime_with_read_until_s


def default_operating_points(
    genome_length_bases: int = 30_000,
    squigglefilter_recall: float = 0.94,
    squigglefilter_fpr: float = 0.02,
    guppy_lite_recall: float = 0.97,
    guppy_lite_fpr: float = 0.01,
) -> List[ClassifierOperatingPoint]:
    """The three classifiers compared in Figure 21.

    Guppy-lite is allowed a slightly better operating point than
    SquiggleFilter (the paper concedes basecall+align is marginally more
    accurate); the figure's message is that the accuracy edge is irrelevant
    once the GPU cannot serve all pores.
    """
    jetson = basecaller_performance("guppy_lite", "jetson_xavier")
    titan = basecaller_performance("guppy_lite", "titan_xp")
    accelerator = accelerator_performance(genome_length_bases)
    return [
        ClassifierOperatingPoint(
            name="guppy_lite@jetson_xavier",
            throughput_bases_per_s=jetson.read_until_bases_per_s,
            recall=guppy_lite_recall,
            false_positive_rate=guppy_lite_fpr,
            decision_latency_s=jetson.read_until_latency_ms / 1e3,
        ),
        ClassifierOperatingPoint(
            name="guppy_lite@titan_xp",
            throughput_bases_per_s=titan.read_until_bases_per_s,
            recall=guppy_lite_recall,
            false_positive_rate=guppy_lite_fpr,
            decision_latency_s=titan.read_until_latency_ms / 1e3,
        ),
        ClassifierOperatingPoint(
            name="squigglefilter",
            throughput_bases_per_s=accelerator.total_throughput_bases_per_s,
            recall=squigglefilter_recall,
            false_positive_rate=squigglefilter_fpr,
            decision_latency_s=accelerator.latency_s,
        ),
    ]


def scalability_analysis(
    scale_factors: Sequence[float] = (1, 2, 5, 10, 20, 50, 100),
    operating_points: Optional[Sequence[ClassifierOperatingPoint]] = None,
    config: Optional[ReadUntilModelConfig] = None,
    sequencer_bases_per_s: float = MINION_MAX_BASES_PER_S,
) -> List[ScalabilityPoint]:
    """Figure 21: runtime benefit versus sequencer throughput scaling.

    At scale ``s`` the sequencer produces ``s x`` the MinION's output. The
    classifier can serve Read Until decisions for a pore fraction
    ``min(1, classifier_throughput / (s x sequencer output))``; the remaining
    pores run as control. Runtimes combine the two pore populations
    harmonically (they work in parallel on the same coverage goal).
    """
    points: List[ScalabilityPoint] = []
    classifiers = (
        list(operating_points) if operating_points is not None else default_operating_points()
    )
    base_config = config if config is not None else ReadUntilModelConfig()
    for scale in scale_factors:
        if scale <= 0:
            raise ValueError("scale factors must be positive")
        for classifier in classifiers:
            model = base_config.with_(decision_latency_s=classifier.decision_latency_s)
            fraction = min(
                1.0, classifier.throughput_bases_per_s / (scale * sequencer_bases_per_s)
            )
            runtime_read_until = sequencing_runtime_s(
                model,
                recall=classifier.recall,
                false_positive_rate=classifier.false_positive_rate,
                use_read_until=True,
            )
            runtime_control = sequencing_runtime_s(model, use_read_until=False)
            # The sequencer's extra throughput shortens both arms equally.
            runtime_read_until /= scale
            runtime_control /= scale
            # Pores split between Read Until and control contribute coverage in
            # parallel; total runtime is the harmonic combination of the two
            # acquisition rates weighted by the pore fractions.
            read_until_rate = fraction / runtime_read_until if runtime_read_until > 0 else 0.0
            control_rate = (1.0 - fraction) / runtime_control if runtime_control > 0 else 0.0
            combined_rate = read_until_rate + control_rate
            combined_runtime = 1.0 / combined_rate if combined_rate > 0 else float("inf")
            points.append(
                ScalabilityPoint(
                    classifier=classifier.name,
                    scale_factor=float(scale),
                    read_until_pore_fraction=fraction,
                    runtime_with_read_until_s=combined_runtime,
                    runtime_without_read_until_s=runtime_control,
                )
            )
    return points


def speedup_table(points: Sequence[ScalabilityPoint]) -> List[Dict[str, object]]:
    """Flatten scalability points into printable rows."""
    return [
        {
            "classifier": point.classifier,
            "scale_factor": point.scale_factor,
            "read_until_pore_fraction": point.read_until_pore_fraction,
            "speedup": point.speedup,
        }
        for point in points
    ]
