"""Multi-tenant async classification service over a shared backend pool.

``repro.serve`` turns the one-process, one-session runtime into a service:
many concurrent tenants — each a named, validated
:class:`~repro.runtime.RunConfig` — stream polling rounds over HTTP into
their own :class:`~repro.runtime.ReadUntilSession`, while a shared, bounded
:class:`BackendPool` decides *when* each session's execution backend may
advance (admission control, per-tenant round-robin fairness, ``429`` +
``Retry-After`` backpressure at saturation). ``/health`` and a
Prometheus-style ``/metrics`` expose per-round latency percentiles, lane
occupancy, per-target accept counts and pool queue depth; shutdown drains
gracefully through the hardened worker-pool teardown.

The transport is dependency-free (stdlib asyncio HTTP); FastAPI mounts the
same handlers when installed (:func:`create_fastapi_app`). Decisions served
over the wire are bit-identical to local :func:`~repro.runtime.open_session`
runs — the property ``benchmarks/bench_serve.py`` asserts under concurrent
load.

Quickstart::

    # server (or: repro serve --port 8093)
    from repro.serve import serve_forever
    serve_forever(port=8093)

    # client
    from repro.serve.client import ServeClient
    client = ServeClient("127.0.0.1", 8093)
    sid = client.create_session({"genome": genome, "threshold": 125000.0,
                                 "label": "flowcell-A"})
    actions, meta = client.submit_round(sid, chunks)
"""

from repro.serve.app import (
    BackgroundServer,
    Response,
    ServeApp,
    ServeServer,
    create_fastapi_app,
    serve_forever,
    start_server,
)
from repro.serve.client import AsyncServeClient, ServeClient, ServeClientError
from repro.serve.manager import SessionManager, UnknownSessionError
from repro.serve.metrics import MetricsRegistry
from repro.serve.pool import BackendPool, PoolClosedError, PoolSaturatedError

__all__ = [
    "AsyncServeClient",
    "BackendPool",
    "BackgroundServer",
    "MetricsRegistry",
    "PoolClosedError",
    "PoolSaturatedError",
    "Response",
    "ServeApp",
    "ServeClient",
    "ServeClientError",
    "ServeServer",
    "SessionManager",
    "UnknownSessionError",
    "create_fastapi_app",
    "serve_forever",
    "start_server",
]
