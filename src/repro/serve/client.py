"""Clients for the classification service (stdlib only, sync and async).

Both clients speak the wire format defined in :mod:`repro.serve.manager`
and implement the **backpressure contract**: a ``429 Too Many Requests``
response is admission control, not failure — the client sleeps for the
server's ``Retry-After`` hint and resubmits the same round, so saturation
never drops a round. The number of backpressure retries is counted on
``backpressure_retries`` (the load generator reports it).

* :class:`ServeClient` — blocking, built on :mod:`http.client` with a
  persistent connection; what scripts and examples use.
* :class:`AsyncServeClient` — coroutine-based, built on
  ``asyncio.open_connection`` with HTTP/1.1 keep-alive; what the asyncio
  load generator's concurrent tenants use.
"""

from __future__ import annotations

import asyncio
import http.client
import json
import time
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.pipeline.api import Action
from repro.runtime import RunConfig
from repro.serve.manager import action_from_payload, chunk_to_payload
from repro.sequencer.read_until_api import SignalChunk

__all__ = ["AsyncServeClient", "ServeClient", "ServeClientError"]


class ServeClientError(RuntimeError):
    """A non-retryable error response from the service."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message


def _config_payload(config: Union[RunConfig, Mapping[str, Any], None]) -> Dict[str, Any]:
    if config is None:
        return {}
    if isinstance(config, RunConfig):
        return {"config": config.to_dict()}
    return {"config": dict(config)}


def _chunks_payload(chunks: Sequence[Union[SignalChunk, Mapping[str, Any]]]) -> Dict[str, Any]:
    serialized = [
        chunk_to_payload(chunk) if isinstance(chunk, SignalChunk) else dict(chunk)
        for chunk in chunks
    ]
    return {"chunks": serialized}


def _parse_actions(payload: Mapping[str, Any]) -> List[Action]:
    return [action_from_payload(entry) for entry in payload.get("actions", [])]


def _retry_after(headers: Mapping[str, str], payload: Any) -> float:
    header = headers.get("retry-after") or headers.get("Retry-After")
    if header:
        try:
            return max(0.01, float(header))
        except ValueError:
            pass
    if isinstance(payload, Mapping) and "retry_after_s" in payload:
        return max(0.01, float(payload["retry_after_s"]))
    return 0.05


def _error_message(payload: Any, raw: bytes) -> str:
    if isinstance(payload, Mapping) and "error" in payload:
        return str(payload["error"])
    return raw.decode(errors="replace")[:200]


class ServeClient:
    """Blocking client over one persistent HTTP connection."""

    def __init__(
        self,
        host: str,
        port: int,
        timeout_s: float = 60.0,
        max_retries: int = 256,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout_s = timeout_s
        self.max_retries = int(max_retries)
        self.backpressure_retries = 0
        self._connection: Optional[http.client.HTTPConnection] = None

    # -------------------------------------------------------------- plumbing
    def _request(
        self, method: str, path: str, payload: Optional[Mapping[str, Any]] = None
    ) -> Any:
        body = json.dumps(payload).encode() if payload is not None else b""
        for _attempt in range(self.max_retries + 1):
            if self._connection is None:
                self._connection = http.client.HTTPConnection(
                    self.host, self.port, timeout=self.timeout_s
                )
            try:
                self._connection.request(
                    method,
                    path,
                    body=body,
                    headers={"Content-Type": "application/json"},
                )
                response = self._connection.getresponse()
                data = response.read()
            except (http.client.HTTPException, ConnectionError, OSError):
                # Stale keep-alive connection: rebuild once and resend.
                self.close()
                self._connection = http.client.HTTPConnection(
                    self.host, self.port, timeout=self.timeout_s
                )
                self._connection.request(
                    method,
                    path,
                    body=body,
                    headers={"Content-Type": "application/json"},
                )
                response = self._connection.getresponse()
                data = response.read()
            headers = {name.lower(): value for name, value in response.getheaders()}
            parsed: Any
            if headers.get("content-type", "").startswith("application/json"):
                parsed = json.loads(data.decode()) if data else {}
            else:
                parsed = data.decode()
            if response.status == 429:
                self.backpressure_retries += 1
                time.sleep(_retry_after(headers, parsed))
                continue
            if response.status >= 400:
                raise ServeClientError(response.status, _error_message(parsed, data))
            return parsed
        raise ServeClientError(429, f"still saturated after {self.max_retries} retries")

    # ------------------------------------------------------------------- api
    def health(self) -> Dict[str, Any]:
        return self._request("GET", "/health")

    def metrics_text(self) -> str:
        return self._request("GET", "/metrics")

    def create_session(
        self, config: Union[RunConfig, Mapping[str, Any], None] = None
    ) -> str:
        return self._request("POST", "/v1/sessions", _config_payload(config))[
            "session_id"
        ]

    def list_sessions(self) -> List[Dict[str, Any]]:
        return self._request("GET", "/v1/sessions")["sessions"]

    def submit_round(
        self,
        session_id: str,
        chunks: Sequence[Union[SignalChunk, Mapping[str, Any]]],
    ) -> Tuple[List[Action], Dict[str, Any]]:
        """One classification round; returns (actions, round metadata)."""
        payload = self._request(
            "POST", f"/v1/sessions/{session_id}/rounds", _chunks_payload(chunks)
        )
        return _parse_actions(payload), payload

    def summary(self, session_id: str) -> Dict[str, Any]:
        return self._request("GET", f"/v1/sessions/{session_id}/summary")

    def close_session(self, session_id: str) -> Dict[str, Any]:
        return self._request("DELETE", f"/v1/sessions/{session_id}")

    def shutdown_server(self) -> Dict[str, Any]:
        return self._request("POST", "/shutdown")

    def close(self) -> None:
        if self._connection is not None:
            self._connection.close()
            self._connection = None

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class AsyncServeClient:
    """Coroutine client over one keep-alive connection (one per tenant)."""

    def __init__(
        self,
        host: str,
        port: int,
        max_retries: int = 256,
    ) -> None:
        self.host = host
        self.port = port
        self.max_retries = int(max_retries)
        self.backpressure_retries = 0
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None

    async def _connect(self) -> None:
        self._reader, self._writer = await asyncio.open_connection(self.host, self.port)

    async def _roundtrip(self, method: str, path: str, body: bytes) -> Tuple[int, Dict[str, str], bytes]:
        if self._writer is None:
            await self._connect()
        assert self._reader is not None and self._writer is not None
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: {self.host}:{self.port}\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            "Connection: keep-alive\r\n\r\n"
        )
        self._writer.write(head.encode() + body)
        await self._writer.drain()
        status_line = await self._reader.readline()
        if not status_line:
            raise ConnectionError("server closed the connection")
        status = int(status_line.decode("latin-1").split()[1])
        headers: Dict[str, str] = {}
        while True:
            line = await self._reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or 0)
        data = await self._reader.readexactly(length) if length else b""
        if headers.get("connection", "keep-alive").lower() == "close":
            await self.close()
        return status, headers, data

    async def _request(
        self, method: str, path: str, payload: Optional[Mapping[str, Any]] = None
    ) -> Any:
        body = json.dumps(payload).encode() if payload is not None else b""
        for _attempt in range(self.max_retries + 1):
            try:
                status, headers, data = await self._roundtrip(method, path, body)
            except (ConnectionError, asyncio.IncompleteReadError, OSError):
                await self.close()
                await self._connect()
                status, headers, data = await self._roundtrip(method, path, body)
            parsed: Any
            if headers.get("content-type", "").startswith("application/json"):
                parsed = json.loads(data.decode()) if data else {}
            else:
                parsed = data.decode()
            if status == 429:
                self.backpressure_retries += 1
                await asyncio.sleep(_retry_after(headers, parsed))
                continue
            if status >= 400:
                raise ServeClientError(status, _error_message(parsed, data))
            return parsed
        raise ServeClientError(429, f"still saturated after {self.max_retries} retries")

    # ------------------------------------------------------------------- api
    async def health(self) -> Dict[str, Any]:
        return await self._request("GET", "/health")

    async def metrics_text(self) -> str:
        return await self._request("GET", "/metrics")

    async def create_session(
        self, config: Union[RunConfig, Mapping[str, Any], None] = None
    ) -> str:
        payload = await self._request("POST", "/v1/sessions", _config_payload(config))
        return payload["session_id"]

    async def submit_round(
        self,
        session_id: str,
        chunks: Sequence[Union[SignalChunk, Mapping[str, Any]]],
    ) -> Tuple[List[Action], Dict[str, Any]]:
        payload = await self._request(
            "POST", f"/v1/sessions/{session_id}/rounds", _chunks_payload(chunks)
        )
        return _parse_actions(payload), payload

    async def summary(self, session_id: str) -> Dict[str, Any]:
        return await self._request("GET", f"/v1/sessions/{session_id}/summary")

    async def close_session(self, session_id: str) -> Dict[str, Any]:
        return await self._request("DELETE", f"/v1/sessions/{session_id}")

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionError, OSError):
                pass
        self._reader = None
        self._writer = None
