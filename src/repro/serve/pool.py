"""Admission control over a shared, bounded pool of execution slots.

Every tenant session owns its own classifier/engine/backend objects (lane
state is per-session), but *when* those backends may advance a wavefront is
a service-level concern — exactly the µ-cuDNN lesson of treating resource
knobs as runtime-managed rather than caller-managed. :class:`BackendPool`
bounds two things:

* **concurrency** — at most ``max_concurrency`` rounds execute at once,
  each on a thread of the pool's executor (the sDTW advance is synchronous
  CPU work; the asyncio event loop never blocks on it);
* **queueing** — at most ``max_queue`` rounds wait for a slot. Beyond
  that, :meth:`acquire` raises :class:`PoolSaturatedError` carrying a
  ``retry_after_s`` hint (derived from the recent round-latency EWMA and
  the queue depth), which the HTTP layer turns into ``429`` +
  ``Retry-After`` — load sheds at admission instead of collapsing.

Waiters are granted **fairly**: one FIFO queue per tenant, slots handed out
round-robin across tenants, so a hot flowcell hammering the service cannot
starve a tenant that submits occasionally.

:meth:`close` supports graceful draining: new admissions fail immediately
while queued and in-flight rounds run to completion, after which the
executor shuts down — the layer above then closes each session, reusing the
hardened worker-pool teardown underneath.
"""

from __future__ import annotations

import asyncio
import time
from collections import OrderedDict, deque
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, Deque, Dict, Optional

__all__ = ["BackendPool", "PoolClosedError", "PoolSaturatedError"]


class PoolSaturatedError(RuntimeError):
    """The pool's wait queue is full; retry after ``retry_after_s`` seconds."""

    def __init__(self, message: str, retry_after_s: float) -> None:
        super().__init__(message)
        self.retry_after_s = retry_after_s


class PoolClosedError(RuntimeError):
    """The pool is draining or closed; no new work is admitted."""


class BackendPool:
    """Bounded executor slots with per-tenant round-robin admission.

    All methods must run on one asyncio event loop (the serving loop);
    the submitted callables execute on the pool's worker threads.
    """

    def __init__(
        self,
        max_concurrency: int = 2,
        max_queue: int = 32,
        *,
        initial_latency_s: float = 0.05,
    ) -> None:
        if max_concurrency <= 0:
            raise ValueError(f"max_concurrency must be positive, got {max_concurrency}")
        if max_queue < 0:
            raise ValueError(f"max_queue must be >= 0, got {max_queue}")
        self.max_concurrency = int(max_concurrency)
        self.max_queue = int(max_queue)
        self._active = 0
        self._queued = 0
        self._queues: "OrderedDict[str, Deque[asyncio.Future]]" = OrderedDict()
        self._rr: Deque[str] = deque()
        self._closed = False
        self._idle = asyncio.Event()
        self._idle.set()
        self._latency_ewma_s = float(initial_latency_s)
        self._executor = ThreadPoolExecutor(
            max_workers=self.max_concurrency, thread_name_prefix="repro-serve"
        )

    # ------------------------------------------------------------ inspection
    @property
    def active(self) -> int:
        """Rounds executing right now."""
        return self._active

    @property
    def queue_depth(self) -> int:
        """Rounds waiting for a slot."""
        return self._queued

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def latency_ewma_s(self) -> float:
        """Exponentially weighted average of recent round execution times."""
        return self._latency_ewma_s

    def retry_after_hint(self) -> float:
        """How long a rejected client should back off before retrying."""
        backlog_rounds = (self._queued + self._active) / self.max_concurrency
        return round(min(5.0, max(0.05, self._latency_ewma_s * (backlog_rounds + 1.0))), 3)

    # ------------------------------------------------------------- admission
    async def acquire(self, tenant: str) -> None:
        """Wait for an execution slot on behalf of ``tenant``.

        Returns once a slot is held (pair with :meth:`release`). Raises
        :class:`PoolSaturatedError` when the wait queue is full and
        :class:`PoolClosedError` once the pool is draining.
        """
        if self._closed:
            raise PoolClosedError("backend pool is draining; no new rounds admitted")
        # Barging is forbidden even when a slot is free: queued tenants go first.
        if self._active < self.max_concurrency and self._queued == 0:
            self._active += 1
            self._idle.clear()
            return
        if self._queued >= self.max_queue:
            retry_after = self.retry_after_hint()
            raise PoolSaturatedError(
                f"backend pool saturated ({self._active} active, "
                f"{self._queued} queued, max_queue={self.max_queue}); "
                f"retry in {retry_after}s",
                retry_after_s=retry_after,
            )
        waiter: asyncio.Future = asyncio.get_running_loop().create_future()
        queue = self._queues.get(tenant)
        if queue is None:
            queue = self._queues[tenant] = deque()
            self._rr.append(tenant)
        queue.append(waiter)
        self._queued += 1
        try:
            await waiter
        except asyncio.CancelledError:
            if waiter.cancelled():
                self._discard_waiter(tenant, waiter)
            else:
                # The slot was granted between grant and cancellation: give
                # it back so it is not leaked.
                self.release()
            raise

    def release(self, duration_s: Optional[float] = None) -> None:
        """Free a slot, folding ``duration_s`` into the latency EWMA, and
        hand it to the next queued tenant in round-robin order."""
        if duration_s is not None:
            self._latency_ewma_s = 0.8 * self._latency_ewma_s + 0.2 * float(duration_s)
        while self._rr:
            tenant = self._rr.popleft()
            queue = self._queues.get(tenant)
            if not queue:
                self._queues.pop(tenant, None)
                continue
            waiter = queue.popleft()
            if queue:
                self._rr.append(tenant)  # back of the rotation: fairness
            else:
                self._queues.pop(tenant, None)
            self._queued -= 1
            if not waiter.done():
                waiter.set_result(None)  # the slot transfers; _active unchanged
                return
        self._active -= 1
        if self._active == 0 and self._queued == 0:
            self._idle.set()

    def _discard_waiter(self, tenant: str, waiter: asyncio.Future) -> None:
        queue = self._queues.get(tenant)
        if queue is not None and waiter in queue:
            queue.remove(waiter)
            self._queued -= 1
            if not queue:
                self._queues.pop(tenant, None)
        if self._active == 0 and self._queued == 0:
            self._idle.set()

    # ------------------------------------------------------------- execution
    async def run(self, tenant: str, fn: Callable[..., Any], *args: Any) -> Any:
        """Admit, then execute ``fn(*args)`` on a pool worker thread."""
        await self.acquire(tenant)
        start = time.perf_counter()
        try:
            return await asyncio.get_running_loop().run_in_executor(
                self._executor, fn, *args
            )
        finally:
            self.release(time.perf_counter() - start)

    # -------------------------------------------------------------- lifecycle
    async def close(self, drain: bool = True) -> None:
        """Stop admitting work; optionally wait for the backlog to finish."""
        if self._closed:
            return
        self._closed = True
        if drain:
            await self._idle.wait()
        else:
            for queue in self._queues.values():
                for waiter in queue:
                    if not waiter.done():
                        waiter.set_exception(
                            PoolClosedError("backend pool closed before this round ran")
                        )
            self._queues.clear()
            self._rr.clear()
            self._queued = 0
        self._executor.shutdown(wait=drain)

    def snapshot(self) -> Dict[str, Any]:
        """Pool occupancy for ``/health`` and ``/metrics``."""
        return {
            "max_concurrency": self.max_concurrency,
            "max_queue": self.max_queue,
            "active": self._active,
            "queue_depth": self._queued,
            "latency_ewma_s": self._latency_ewma_s,
            "closed": self._closed,
        }
