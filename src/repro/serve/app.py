"""The asyncio classification service: routes, HTTP transport, lifecycle.

The request handling is framework-neutral: :class:`ServeApp` maps
``(method, path, json body)`` to a :class:`Response`, independent of any web
framework. Two transports expose it:

* the **stdlib transport** (:class:`ServeServer`, built on
  ``asyncio.start_server`` with a minimal HTTP/1.1 keep-alive parser) — the
  default, so the service and its tier-1 tests need no packages beyond the
  standard library;
* an optional **FastAPI adapter** (:func:`create_fastapi_app`) that mounts
  the same handlers on a FastAPI application when the package is installed
  (for deployments that want its middleware/OpenAPI ecosystem).

Routes::

    GET    /health                     liveness + pool/session occupancy
    GET    /metrics                    Prometheus text exposition
    GET    /v1/sessions                list open sessions
    POST   /v1/sessions                create a session  {"config": {...RunConfig...}}
    POST   /v1/sessions/{id}/rounds    classify one round  {"chunks": [...]}
    GET    /v1/sessions/{id}/summary   live decision tallies + occupancy
    DELETE /v1/sessions/{id}           close; returns the final summary
    POST   /shutdown                   begin graceful draining (also SIGTERM)

Error mapping: config/chunk validation -> 400 (the ``RunConfig`` message,
naming the offending field), unknown session -> 404, closed session or
concurrent round -> 409, pool saturation -> 429 with a ``Retry-After``
header (admission control, not failure — clients retry and no round is
ever dropped), draining -> 503.

Graceful shutdown (:meth:`ServeServer.shutdown`) drains in order: stop
admitting requests, let queued rounds finish, close every session (which
releases execution backends through the hardened worker-pool teardown),
then close the listening socket.
"""

from __future__ import annotations

import asyncio
import json
import threading
import traceback
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Tuple

from repro.runtime import SessionClosedError
from repro.serve.manager import PoolSaturatedSessions, SessionManager, UnknownSessionError
from repro.serve.metrics import MetricsRegistry
from repro.serve.pool import BackendPool, PoolClosedError, PoolSaturatedError

__all__ = [
    "BackgroundServer",
    "Response",
    "ServeApp",
    "ServeServer",
    "create_fastapi_app",
    "serve_forever",
    "start_server",
]

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


@dataclass
class Response:
    """One transport-independent HTTP response."""

    status: int = 200
    body: Dict[str, Any] = field(default_factory=dict)
    text: Optional[str] = None  # non-JSON payload (the /metrics exposition)
    headers: Dict[str, str] = field(default_factory=dict)

    def payload(self) -> Tuple[bytes, str]:
        if self.text is not None:
            return self.text.encode(), "text/plain; version=0.0.4; charset=utf-8"
        return (json.dumps(self.body) + "\n").encode(), "application/json"


class ServeApp:
    """Framework-neutral request handling over one manager/pool/metrics."""

    def __init__(
        self,
        manager: SessionManager,
        *,
        on_shutdown: Optional[Any] = None,
    ) -> None:
        self.manager = manager
        self.pool = manager.pool
        self.metrics = manager.metrics
        self.draining = False
        self._on_shutdown = on_shutdown  # callable scheduling a graceful stop

    # ------------------------------------------------------------- dispatch
    async def handle(self, method: str, path: str, body: bytes) -> Response:
        """Route one request; every error becomes a structured response."""
        try:
            return await self._route(method.upper(), path.rstrip("/") or "/", body)
        except PoolSaturatedError as error:
            self.metrics.inc("repro_serve_rejected_total", reason="pool_saturated")
            return Response(
                status=429,
                body={"error": str(error), "retry_after_s": error.retry_after_s},
                headers={"Retry-After": f"{error.retry_after_s:g}"},
            )
        except PoolSaturatedSessions as error:
            self.metrics.inc("repro_serve_rejected_total", reason="session_limit")
            return Response(status=429, body={"error": str(error)})
        except UnknownSessionError as error:
            return Response(status=404, body={"error": str(error)})
        except SessionClosedError as error:
            return Response(status=409, body={"error": str(error)})
        except PoolClosedError as error:
            return Response(status=503, body={"error": str(error)})
        except (ValueError, json.JSONDecodeError) as error:
            return Response(status=400, body={"error": str(error)})
        except Exception as error:  # noqa: BLE001 - the service must not die
            traceback.print_exc()
            return Response(
                status=500, body={"error": f"{type(error).__name__}: {error}"}
            )

    async def _route(self, method: str, path: str, body: bytes) -> Response:
        if path == "/health" and method == "GET":
            return self._health()
        if path == "/metrics" and method == "GET":
            return Response(text=self.metrics.render())
        if self.draining:
            return Response(
                status=503, body={"error": "server is draining; no new requests"}
            )
        if path == "/shutdown" and method == "POST":
            if self._on_shutdown is not None:
                self._on_shutdown()
            return Response(body={"draining": True})
        if path == "/v1/sessions":
            if method == "GET":
                return Response(body={"sessions": self.manager.list_sessions()})
            if method == "POST":
                payload = _parse_json(body)
                config = payload.get("config", payload or None)
                return Response(body=self.manager.create(config))
            return Response(status=405, body={"error": f"{method} not allowed here"})
        parts = path.strip("/").split("/")
        if len(parts) >= 2 and parts[0] == "v1" and parts[1] == "sessions" and len(parts) >= 3:
            session_id = parts[2]
            tail = parts[3] if len(parts) > 3 else None
            if tail == "rounds" and method == "POST":
                payload = _parse_json(body)
                chunks = payload.get("chunks")
                if chunks is None:
                    raise ValueError("chunks: the round payload names no chunks")
                return Response(body=await self.manager.submit_round(session_id, chunks))
            if tail == "summary" and method == "GET":
                return Response(body=self.manager.summary(session_id))
            if tail is None and method == "GET":
                return Response(body=self.manager.describe(session_id))
            if tail is None and method == "DELETE":
                return Response(body=await self.manager.close_session(session_id))
        return Response(status=404, body={"error": f"no route for {method} {path}"})

    def _health(self) -> Response:
        status = "draining" if self.draining else "ok"
        return Response(
            body={
                "status": status,
                "sessions": len(self.manager),
                "pool": self.pool.snapshot(),
            }
        )


def _parse_json(body: bytes) -> Dict[str, Any]:
    if not body:
        return {}
    data = json.loads(body.decode())
    if not isinstance(data, Mapping):
        raise ValueError("request body must be a JSON object")
    return dict(data)


# ----------------------------------------------------------- stdlib server
class ServeServer:
    """The stdlib asyncio HTTP transport around one :class:`ServeApp`."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        max_concurrency: int = 2,
        max_queue: int = 32,
        default_config: Optional[Mapping[str, Any]] = None,
        max_sessions: int = 256,
    ) -> None:
        self.host = host
        self._requested_port = port
        self.pool = BackendPool(max_concurrency=max_concurrency, max_queue=max_queue)
        self.metrics = MetricsRegistry()
        self.manager = SessionManager(
            self.pool,
            metrics=self.metrics,
            default_config=default_config,
            max_sessions=max_sessions,
        )
        self.app = ServeApp(self.manager, on_shutdown=self.request_shutdown)
        self._server: Optional[asyncio.AbstractServer] = None
        self._shutdown_requested = asyncio.Event()
        self._connections: set = set()

    @property
    def port(self) -> int:
        """The bound port (resolves port 0 to the ephemeral pick)."""
        if self._server is not None and self._server.sockets:
            return self._server.sockets[0].getsockname()[1]
        return self._requested_port

    async def start(self) -> "ServeServer":
        self._server = await asyncio.start_server(
            self._serve_connection, self.host, self._requested_port
        )
        return self

    def request_shutdown(self) -> None:
        """Signal-safe trigger for graceful draining (SIGTERM/SIGINT path)."""
        self._shutdown_requested.set()

    async def wait_shutdown_requested(self) -> None:
        await self._shutdown_requested.wait()

    async def shutdown(self) -> None:
        """Drain gracefully: refuse new work, finish the backlog, close all
        sessions (hardened worker-pool teardown underneath), stop listening."""
        self.app.draining = True
        await self.pool.close(drain=True)
        await self.manager.drain()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        # Idle keep-alive connections block on readline forever; cancel them.
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(*self._connections, return_exceptions=True)

    # ------------------------------------------------------------- transport
    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
        try:
            while True:
                request = await _read_request(reader)
                if request is None:
                    break
                method, path, headers, body = request
                response = await self.app.handle(method, path, body)
                keep_alive = headers.get("connection", "keep-alive").lower() != "close"
                _write_response(writer, response, keep_alive)
                await writer.drain()
                if not keep_alive:
                    break
        except (
            asyncio.IncompleteReadError,
            ConnectionResetError,
            BrokenPipeError,
            asyncio.LimitOverrunError,
        ):
            pass  # the peer went away mid-request; nothing to answer
        except asyncio.CancelledError:
            pass  # shutdown cancelled an idle keep-alive connection
        finally:
            if task is not None:
                self._connections.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass


async def _read_request(
    reader: asyncio.StreamReader,
) -> Optional[Tuple[str, str, Dict[str, str], bytes]]:
    request_line = await reader.readline()
    if not request_line or request_line in (b"\r\n", b"\n"):
        return None
    try:
        method, target, _version = request_line.decode("latin-1").split(None, 2)
    except ValueError:
        return None
    headers: Dict[str, str] = {}
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    length = int(headers.get("content-length", "0") or 0)
    body = await reader.readexactly(length) if length else b""
    path = target.split("?", 1)[0]
    return method, path, headers, body


def _write_response(
    writer: asyncio.StreamWriter, response: Response, keep_alive: bool
) -> None:
    payload, content_type = response.payload()
    reason = _REASONS.get(response.status, "Unknown")
    head = [
        f"HTTP/1.1 {response.status} {reason}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(payload)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    head.extend(f"{name}: {value}" for name, value in response.headers.items())
    writer.write(("\r\n".join(head) + "\r\n\r\n").encode() + payload)


async def start_server(
    host: str = "127.0.0.1",
    port: int = 0,
    *,
    max_concurrency: int = 2,
    max_queue: int = 32,
    default_config: Optional[Mapping[str, Any]] = None,
    max_sessions: int = 256,
) -> ServeServer:
    """Create and start a :class:`ServeServer` (port 0 picks a free port)."""
    server = ServeServer(
        host,
        port,
        max_concurrency=max_concurrency,
        max_queue=max_queue,
        default_config=default_config,
        max_sessions=max_sessions,
    )
    return await server.start()


def serve_forever(
    host: str = "127.0.0.1",
    port: int = 8093,
    *,
    max_concurrency: int = 2,
    max_queue: int = 32,
    default_config: Optional[Mapping[str, Any]] = None,
    max_sessions: int = 256,
    quiet: bool = False,
) -> int:
    """Run the service until SIGTERM/SIGINT (or ``POST /shutdown``), then
    drain gracefully. Returns 0 — the CLI's blocking entry point."""

    async def _main() -> int:
        server = await start_server(
            host,
            port,
            max_concurrency=max_concurrency,
            max_queue=max_queue,
            default_config=default_config,
            max_sessions=max_sessions,
        )
        loop = asyncio.get_running_loop()
        try:
            import signal

            for signum in (signal.SIGTERM, signal.SIGINT):
                loop.add_signal_handler(signum, server.request_shutdown)
        except (ImportError, NotImplementedError, RuntimeError):
            pass  # platforms without signal handler support: /shutdown only
        if not quiet:
            print(
                f"repro.serve listening on http://{server.host}:{server.port} "
                f"(pool: {max_concurrency} slots, queue {max_queue})",
                flush=True,
            )
        await server.wait_shutdown_requested()
        if not quiet:
            print("repro.serve draining...", flush=True)
        await server.shutdown()
        if not quiet:
            print("repro.serve stopped", flush=True)
        return 0

    return asyncio.run(_main())


# -------------------------------------------------------- background thread
class BackgroundServer:
    """Run a :class:`ServeServer` on a dedicated event-loop thread.

    The in-process harness examples, tests and synchronous clients use: the
    calling thread gets ``host``/``port`` once the server is listening and
    may then drive it with blocking clients. Exiting the context manager
    drains the server and joins the thread.
    """

    def __init__(self, **server_kwargs: Any) -> None:
        self._kwargs = dict(server_kwargs)
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._startup_error: Optional[BaseException] = None
        self.server: Optional[ServeServer] = None

    def __enter__(self) -> "BackgroundServer":
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()
        self._ready.wait()
        if self._startup_error is not None:
            raise RuntimeError("serve thread failed to start") from self._startup_error
        return self

    def _run(self) -> None:
        async def _main() -> None:
            try:
                self.server = await start_server(**self._kwargs)
            except BaseException as error:  # surface bind errors to the caller
                self._startup_error = error
                self._ready.set()
                return
            self._ready.set()
            await self.server.wait_shutdown_requested()
            await self.server.shutdown()

        self._loop = asyncio.new_event_loop()
        try:
            self._loop.run_until_complete(_main())
        finally:
            self._loop.close()

    @property
    def host(self) -> str:
        assert self.server is not None
        return self.server.host

    @property
    def port(self) -> int:
        assert self.server is not None
        return self.server.port

    def __exit__(self, *exc_info: object) -> None:
        if self._loop is not None and self.server is not None:
            self._loop.call_soon_threadsafe(self.server.request_shutdown)
        if self._thread is not None:
            self._thread.join(timeout=60)


# ----------------------------------------------------------- fastapi adapter
def create_fastapi_app(server: Optional[ServeServer] = None, **server_kwargs: Any):
    """Mount the service on a FastAPI application (optional dependency).

    Raises :class:`RuntimeError` with an install hint when FastAPI is not
    importable — the stdlib transport (:func:`start_server` /
    :func:`serve_forever`) covers every feature without it.
    """
    try:
        from fastapi import FastAPI, Request
        from fastapi.responses import Response as FastAPIResponse
    except ImportError:
        raise RuntimeError(
            "create_fastapi_app needs FastAPI (pip install fastapi); the "
            "stdlib transport repro.serve.start_server works without it"
        ) from None

    serve = server if server is not None else ServeServer(**server_kwargs)
    api = FastAPI(title="repro.serve", version="1")

    @api.api_route(
        "/{path:path}", methods=["GET", "POST", "DELETE", "PUT", "PATCH"]
    )
    async def _dispatch(path: str, request: Request) -> FastAPIResponse:
        body = await request.body()
        response = await serve.app.handle(request.method, "/" + path, body)
        payload, content_type = response.payload()
        return FastAPIResponse(
            content=payload,
            status_code=response.status,
            media_type=content_type,
            headers=response.headers,
        )

    api.state.serve_server = serve
    return api
