"""Compatibility shim: the metrics registry moved to :mod:`repro.obs.metrics`.

The registry started life here serving only ``GET /metrics``; once the
observability layer landed it was promoted to ``repro.obs`` so local
sessions and benchmarks feed the same counters the server exposes. Import
from :mod:`repro.obs` (or :mod:`repro.obs.metrics`) in new code; this
module keeps existing ``repro.serve.metrics`` imports working unchanged.
"""

from __future__ import annotations

from repro.obs.metrics import (  # noqa: F401
    MetricsRegistry,
    _format_labels,
    _format_value,
    _label_key,
    _nearest_rank,
    _trim_quantile,
)

__all__ = ["MetricsRegistry"]
