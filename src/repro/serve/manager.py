"""Tenant session lifecycle for the classification service.

Each tenant is a named :class:`~repro.runtime.RunConfig`. The
:class:`SessionManager` owns the create / submit-round / summary / close
lifecycle keyed by session id:

* **create** validates the tenant's config through
  :meth:`RunConfig.from_dict` — service clients get exactly the same
  field-naming error messages as local users — optionally overlaying it on
  the server's default config template;
* **submit-round** deserializes the tenant's chunk payload, serializes
  rounds per session with an :class:`asyncio.Lock` (sessions are
  single-writer; the lock queues HTTP clients politely where the session
  itself would raise), executes through the shared
  :class:`~repro.serve.pool.BackendPool`, and folds the outcome into the
  metrics registry;
* **close** captures the final summary before the session releases its
  execution backend (summaries are unavailable after close), reusing the
  hardened worker-pool teardown underneath.

Wire format: chunks arrive as ``{"read_id", "signal", "chunk_start_sample",
"channel", "read_number", "is_last"}`` mappings; actions return every
:class:`~repro.pipeline.api.Action` field. Signal samples and costs travel
as JSON numbers — Python's float repr round-trips exactly, so service
decisions are bit-identical to local ``open_session`` runs.
"""

from __future__ import annotations

import asyncio
import re
import time
from typing import Any, Dict, List, Mapping, Optional, Sequence

import numpy as np

from repro.pipeline.api import Action
from repro.runtime import ReadUntilSession, RunConfig, open_session
from repro.serve.metrics import MetricsRegistry
from repro.serve.pool import BackendPool
from repro.sequencer.read_until_api import SignalChunk

__all__ = [
    "SessionManager",
    "UnknownSessionError",
    "action_to_payload",
    "action_from_payload",
    "chunk_from_payload",
    "chunk_to_payload",
]

_ID_SANITIZER = re.compile(r"[^A-Za-z0-9_.-]+")


class UnknownSessionError(KeyError):
    """No session with the given id (never created, or already closed)."""

    def __init__(self, session_id: str) -> None:
        super().__init__(session_id)
        self.session_id = session_id

    def __str__(self) -> str:
        return (
            f"unknown session {self.session_id!r}; it was never created or "
            "has been closed"
        )


# ------------------------------------------------------------- wire format
def chunk_from_payload(payload: Mapping[str, Any]) -> SignalChunk:
    """One wire-format chunk mapping -> :class:`SignalChunk`."""
    if not isinstance(payload, Mapping):
        raise ValueError(f"chunk: expected a mapping, got {type(payload).__name__}")
    missing = [key for key in ("read_id", "signal") if key not in payload]
    if missing:
        raise ValueError(f"chunk: missing required key(s) {', '.join(missing)}")
    signal = np.asarray(payload["signal"], dtype=np.float64)
    if signal.ndim != 1 or signal.size == 0:
        raise ValueError(
            f"chunk: signal must be a non-empty 1-D number list, got shape "
            f"{signal.shape}"
        )
    return SignalChunk(
        channel=int(payload.get("channel", 0)),
        read_id=str(payload["read_id"]),
        read_number=int(payload.get("read_number", 0)),
        chunk_start_sample=int(payload.get("chunk_start_sample", 0)),
        signal_pa=signal,
        is_last=bool(payload.get("is_last", False)),
    )


def chunk_to_payload(chunk: SignalChunk) -> Dict[str, Any]:
    """:class:`SignalChunk` -> the wire-format mapping (client side)."""
    return {
        "channel": int(chunk.channel),
        "read_id": chunk.read_id,
        "read_number": int(chunk.read_number),
        "chunk_start_sample": int(chunk.chunk_start_sample),
        "signal": [float(v) for v in np.asarray(chunk.signal_pa, dtype=np.float64)],
        "is_last": bool(chunk.is_last),
    }


def action_to_payload(action: Action) -> Dict[str, Any]:
    return {
        "kind": action.kind,
        "cost": float(action.cost),
        "samples_used": int(action.samples_used),
        "stage": int(action.stage),
        "threshold": float(action.threshold),
        "end_position": int(action.end_position),
        "target": action.target,
        "target_costs": [float(c) for c in action.target_costs],
    }


def action_from_payload(payload: Mapping[str, Any]) -> Action:
    return Action(
        kind=payload["kind"],
        cost=float(payload.get("cost", 0.0)),
        samples_used=int(payload.get("samples_used", 0)),
        stage=int(payload.get("stage", 0)),
        threshold=float(payload.get("threshold", 0.0)),
        end_position=int(payload.get("end_position", 0)),
        target=payload.get("target"),
        target_costs=tuple(float(c) for c in payload.get("target_costs", ())),
    )


class _ManagedSession:
    """One tenant's session plus its service-side bookkeeping."""

    def __init__(
        self,
        session_id: str,
        config: RunConfig,
        session: ReadUntilSession,
        tuned: Optional[Any] = None,
    ):
        self.session_id = session_id
        self.config = config
        self.session = session
        # The TunedDecision behind backend="auto" (None for pinned configs).
        self.tuned = tuned
        self.lock = asyncio.Lock()
        self.created_at = time.time()
        self.rounds = 0
        # Cumulative per-phase self time already folded into the metrics
        # registry; _record_round observes the delta each round.
        self.phase_seen: Dict[str, float] = {}
        # Cumulative engine cell counters already folded into the registry;
        # _record_round increments the counters by each round's delta.
        self.cells_seen: Dict[str, int] = {}


class SessionManager:
    """Create / submit-round / summary / close, keyed by session id."""

    def __init__(
        self,
        pool: BackendPool,
        metrics: Optional[MetricsRegistry] = None,
        default_config: Optional[Mapping[str, Any]] = None,
        max_sessions: int = 256,
    ) -> None:
        if max_sessions <= 0:
            raise ValueError(f"max_sessions must be positive, got {max_sessions}")
        self.pool = pool
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.default_config = dict(default_config) if default_config else None
        self.max_sessions = int(max_sessions)
        self._sessions: Dict[str, _ManagedSession] = {}
        self._counter = 0
        # backend="auto" is resolved once per workload-shape key and the
        # decision replayed for every subsequent tenant session of that
        # template — probes run at most once per server process per shape.
        self._tuned_templates: Dict[str, Any] = {}
        self.metrics.describe(
            "repro_serve_round_latency_seconds",
            "Server-side latency of one classification round",
        )
        self.metrics.describe(
            "repro_serve_rounds_total", "Classification rounds completed per session"
        )
        self.metrics.describe(
            "repro_serve_round_phase_seconds",
            "Per-phase self time spent inside one classification round",
        )
        self.metrics.describe(
            "repro_serve_cells_advanced_total",
            "sDTW wavefront cells actually computed per session",
        )
        self.metrics.describe(
            "repro_serve_cells_pruned_total",
            "sDTW wavefront cells skipped by column pruning per session",
        )
        self.metrics.describe(
            "repro_serve_cells_lb_skipped_total",
            "sDTW wavefront cells skipped by the lower-bound lane gate per session",
        )
        self.metrics.describe(
            "repro_serve_tuned_backend",
            "Info gauge: what backend='auto' resolved to (backend and cache-hit "
            "status travel as labels; the value is always 1)",
        )

    # ---------------------------------------------------------------- create
    def resolve_config(self, config: Optional[Mapping[str, Any]]) -> RunConfig:
        """Overlay a tenant's config on the server template and validate it.

        Raises :class:`ValueError` with the standard ``RunConfig`` messages
        (every error names the offending field) on anything invalid.
        """
        merged: Dict[str, Any] = dict(self.default_config or {})
        if config is not None:
            if not isinstance(config, Mapping):
                raise ValueError(
                    f"config: expected a mapping of RunConfig fields, got "
                    f"{type(config).__name__}"
                )
            merged.update(config)
        if not merged:
            raise ValueError(
                "config: the request names no RunConfig fields and the server "
                "has no default config template"
            )
        return RunConfig.from_dict(merged)

    def _resolve_auto(self, run_config: RunConfig):
        """Resolve ``backend="auto"`` once per workload-shape template.

        The first tenant session of a shape pays the probes (or a tuning
        cache hit); every later one replays the memoized decision — marked
        ``cache_hit=True``, since no probes ran for it. Multi-tenant
        servers therefore tune each template exactly once per process.
        """
        import dataclasses

        from repro.tune import WorkloadShape, cache_key, tune_config

        key = cache_key(WorkloadShape.from_config(run_config))
        decision = self._tuned_templates.get(key)
        if decision is None:
            decision = tune_config(run_config).decision
            self._tuned_templates[key] = dataclasses.replace(decision, cache_hit=True)
        return decision.apply(run_config), decision

    def create(self, config: Optional[Mapping[str, Any]] = None) -> Dict[str, Any]:
        """Open a session for one tenant config; returns its descriptor."""
        run_config = self.resolve_config(config)
        if len(self._sessions) >= self.max_sessions:
            raise PoolSaturatedSessions(
                f"session limit reached ({self.max_sessions}); close a session first"
            )
        tuned = None
        if run_config.backend == "auto":
            run_config, tuned = self._resolve_auto(run_config)
        self._counter += 1
        slug = _ID_SANITIZER.sub("-", run_config.label or "session").strip("-") or "session"
        session_id = f"{slug}-{self._counter:04d}"
        # Served sessions always run with the in-memory flight recorder on:
        # the per-phase round series in /metrics comes straight from it, and
        # the recorder is bounded so long-lived tenants cannot grow memory.
        if not run_config.tracing_enabled:
            run_config = run_config.with_(trace=True)
        self._sessions[session_id] = _ManagedSession(
            session_id, run_config, open_session(run_config), tuned=tuned
        )
        self.metrics.set_gauge("repro_serve_sessions_open", len(self._sessions))
        if tuned is not None:
            self.metrics.set_gauge(
                "repro_serve_tuned_backend",
                1,
                session=session_id,
                backend=tuned.backend,
                cache_hit="true" if tuned.cache_hit else "false",
            )
        return self.describe(session_id)

    def describe(self, session_id: str) -> Dict[str, Any]:
        managed = self._get(session_id)
        descriptor = {
            "session_id": managed.session_id,
            "label": managed.config.label,
            "backend": managed.config.backend,
            "n_channels": managed.config.n_channels,
            "rounds": managed.rounds,
            "started": managed.session.started,
        }
        if managed.tuned is not None:
            descriptor["tuned"] = managed.tuned.as_dict()
        return descriptor

    # ---------------------------------------------------------------- rounds
    async def submit_round(
        self, session_id: str, chunks: Sequence[Mapping[str, Any]]
    ) -> Dict[str, Any]:
        """Classify one polling round for ``session_id`` through the pool."""
        managed = self._get(session_id)
        if not isinstance(chunks, Sequence) or isinstance(chunks, (str, bytes)):
            raise ValueError("chunks: expected a list of chunk mappings")
        parsed = [chunk_from_payload(chunk) for chunk in chunks]
        async with managed.lock:  # single-writer: rounds are ordered per tenant
            start = time.perf_counter()
            actions: List[Action] = await self.pool.run(
                session_id, managed.session.submit, parsed
            )
            latency_s = time.perf_counter() - start
        managed.rounds += 1
        self._record_round(managed, parsed, actions, latency_s)
        return {
            "session_id": session_id,
            "round": managed.rounds,
            "latency_s": latency_s,
            "actions": [action_to_payload(action) for action in actions],
        }

    def _record_round(
        self,
        managed: _ManagedSession,
        chunks: Sequence[SignalChunk],
        actions: Sequence[Action],
        latency_s: float,
    ) -> None:
        metrics, sid = self.metrics, managed.session_id
        metrics.inc("repro_serve_rounds_total", session=sid)
        metrics.inc("repro_serve_chunks_total", len(chunks), session=sid)
        metrics.inc(
            "repro_serve_samples_total",
            float(sum(chunk.chunk_length for chunk in chunks)),
            session=sid,
        )
        metrics.observe("repro_serve_round_latency_seconds", latency_s, session=sid)
        tracer = managed.session.tracer
        if tracer.enabled:
            for phase, stat in tracer.phase_totals().items():
                delta = stat.self_s - managed.phase_seen.get(phase, 0.0)
                managed.phase_seen[phase] = stat.self_s
                if delta > 0.0:
                    metrics.observe(
                        "repro_serve_round_phase_seconds", delta, session=sid, phase=phase
                    )
        for action in actions:
            if not action.is_terminal:
                continue
            metrics.inc("repro_serve_decisions_total", session=sid, kind=action.kind)
            if action.kind == "accept":
                metrics.inc(
                    "repro_serve_target_accepts_total",
                    session=sid,
                    target=action.target or "target",
                )
        engine = managed.session.engine
        if engine is not None:
            for metric, attribute in (
                ("repro_serve_cells_advanced_total", "cells_advanced"),
                ("repro_serve_cells_pruned_total", "cells_pruned"),
                ("repro_serve_cells_lb_skipped_total", "cells_lb_skipped"),
            ):
                total = int(getattr(engine, attribute, 0))
                delta = total - managed.cells_seen.get(attribute, 0)
                managed.cells_seen[attribute] = total
                if delta > 0:
                    metrics.inc(metric, delta, session=sid)
            metrics.set_gauge(
                "repro_serve_lane_occupancy", engine.mean_occupancy, session=sid, stat="mean"
            )
            metrics.set_gauge(
                "repro_serve_lane_occupancy", engine.peak_occupancy, session=sid, stat="peak"
            )
        metrics.set_gauge("repro_serve_pool_queue_depth", self.pool.queue_depth)
        metrics.set_gauge("repro_serve_pool_active", self.pool.active)

    # --------------------------------------------------------------- summary
    def summary(self, session_id: str) -> Dict[str, Any]:
        return self._get(session_id).session.summary()

    def list_sessions(self) -> List[Dict[str, Any]]:
        return [self.describe(session_id) for session_id in sorted(self._sessions)]

    # ----------------------------------------------------------------- close
    async def close_session(self, session_id: str) -> Dict[str, Any]:
        """Close one session; returns its final summary."""
        managed = self._get(session_id)
        async with managed.lock:
            final = (
                managed.session.summary() if not managed.session.closed else {"closed": True}
            )
            await asyncio.get_running_loop().run_in_executor(
                None, managed.session.close
            )
        self._sessions.pop(session_id, None)
        self.metrics.set_gauge("repro_serve_sessions_open", len(self._sessions))
        final["closed"] = True
        return final

    async def drain(self) -> None:
        """Close every session (the graceful-shutdown path)."""
        for session_id in list(self._sessions):
            try:
                await self.close_session(session_id)
            except UnknownSessionError:  # closed concurrently
                pass

    # --------------------------------------------------------------- helpers
    def _get(self, session_id: str) -> _ManagedSession:
        try:
            return self._sessions[session_id]
        except KeyError:
            raise UnknownSessionError(session_id) from None

    def __len__(self) -> int:
        return len(self._sessions)


class PoolSaturatedSessions(RuntimeError):
    """Session-count admission limit reached (HTTP 429 without Retry-After)."""
