"""Seeded flowcell workloads and round-by-round replay for the service.

The load generator (``benchmarks/bench_serve.py``), the serve tests and the
example client all need the same two things:

* a **deterministic tenant workload** — a serializable
  :class:`~repro.runtime.RunConfig` (genome + calibrated threshold +
  ``label``) plus a seeded read stream, so any two executions of the same
  tenant decide identically;
* a **closed-loop replay** — drive a
  :class:`~repro.sequencer.read_until_api.ReadUntilSimulator` one polling
  round at a time, feeding each round's chunks to a submit callable and
  applying the returned actions back to the simulator (ejections free
  pores, accepts stop streaming), exactly how a real Read Until client
  behaves.

Because the replay is deterministic given the decisions, and decisions are
bit-identical between a local :func:`~repro.runtime.open_session` and the
service (JSON floats round-trip exactly), replaying the same tenant through
both paths must produce identical decision records — the acceptance
property ``bench_serve.py`` asserts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Awaitable, Callable, Dict, List, Sequence, Tuple

from repro.batch.classifier import BatchSquiggleClassifier
from repro.core.reference import ReferenceSquiggle
from repro.genomes.sequences import random_genome
from repro.pipeline.api import Action
from repro.pore_model.kmer_model import KmerModel
from repro.runtime import RunConfig
from repro.sequencer.read_until_api import ReadUntilSimulator, SignalChunk
from repro.sequencer.reads import Read, ReadGenerator, ReadLengthModel, SpecimenMixture

__all__ = [
    "DecisionRecord",
    "TenantWorkload",
    "build_tenant_workloads",
    "replay_flowcell",
    "replay_flowcell_async",
]

# One terminal decision, in the exact fields the bit-identity check compares.
DecisionRecord = Tuple[str, float, int, int, Any]


@dataclass
class TenantWorkload:
    """One tenant: a serializable config plus its seeded read stream."""

    label: str
    config: RunConfig
    reads: List[Read]
    n_channels: int
    chunk_samples: int

    def simulator(self) -> ReadUntilSimulator:
        return ReadUntilSimulator(
            list(self.reads),
            chunk_samples=self.chunk_samples,
            n_channels=self.n_channels,
        )


def build_tenant_workloads(
    n_tenants: int,
    *,
    seed: int = 20210823,
    reads_per_tenant: int = 12,
    viral_fraction: float = 0.3,
    target_bases: int = 900,
    background_bases: int = 4000,
    prefix_samples: int = 800,
    chunk_samples: int = 400,
    n_channels: int = 4,
    calibration_reads_per_class: int = 6,
) -> List[TenantWorkload]:
    """N tenants over one shared genome pair, each with its own read stream.

    The target/background genomes and the calibrated threshold are shared
    (calibration runs once, in-process); each tenant gets an independent
    seeded read mixture and a distinct ``label``, so the service multiplexes
    genuinely different streams that are each fully reproducible.
    """
    if n_tenants <= 0:
        raise ValueError(f"n_tenants must be positive, got {n_tenants}")
    kmer_model = KmerModel()
    target = random_genome(target_bases, seed=seed)
    background = random_genome(background_bases, seed=seed + 1)
    mixture = SpecimenMixture.two_component(
        "target", target, "background", background, viral_fraction
    )
    length_model = ReadLengthModel(
        mean_bases=300, sigma=0.2, min_bases=220, max_bases=520
    )

    calibration = ReadGenerator(
        mixture, kmer_model=kmer_model, length_model=length_model, seed=seed + 2
    ).generate_balanced(calibration_reads_per_class)
    reference = ReferenceSquiggle.from_genome(target, kmer_model=kmer_model)
    helper = BatchSquiggleClassifier(reference, prefix_samples=prefix_samples)
    threshold = helper.calibrate(
        [read.signal_pa for read in calibration if read.is_target],
        [read.signal_pa for read in calibration if not read.is_target],
        chunk_samples=chunk_samples,
    )
    helper.close()

    workloads = []
    for index in range(n_tenants):
        label = f"client{index:02d}"
        config = RunConfig(
            genome=target,
            threshold=threshold,
            prefix_samples=prefix_samples,
            chunk_samples=chunk_samples,
            n_channels=n_channels,
            label=label,
        )
        generator = ReadGenerator(
            mixture,
            kmer_model=kmer_model,
            length_model=length_model,
            seed=seed + 1000 + 17 * index,
        )
        workloads.append(
            TenantWorkload(
                label=label,
                config=config,
                reads=generator.generate(reads_per_tenant),
                n_channels=n_channels,
                chunk_samples=chunk_samples,
            )
        )
    return workloads


def _record(decisions: Dict[str, DecisionRecord], chunks, actions) -> None:
    for chunk, action in zip(chunks, actions):
        if action.is_terminal:
            decisions[chunk.read_id] = (
                action.kind,
                action.cost,
                action.samples_used,
                action.end_position,
                action.target,
            )


def replay_flowcell(
    submit: Callable[[List[SignalChunk]], Sequence[Action]],
    workload: TenantWorkload,
    max_iterations: int = 10_000,
) -> Tuple[Dict[str, DecisionRecord], int]:
    """Replay one tenant's flowcell through a blocking submit callable.

    Returns the per-read decision records and the number of non-empty
    polling rounds submitted.
    """
    simulator = workload.simulator()
    decisions: Dict[str, DecisionRecord] = {}
    rounds = 0
    for _ in range(max_iterations):
        if simulator.finished:
            break
        chunks = simulator.get_read_chunks()
        if not chunks:
            continue
        actions = list(submit(chunks))
        rounds += 1
        _record(decisions, chunks, actions)
        for chunk, action in zip(chunks, actions):
            simulator._apply_action(chunk, action.to_simulator_action(), 0.0)
    return decisions, rounds


async def replay_flowcell_async(
    submit: Callable[[List[SignalChunk]], Awaitable[Sequence[Action]]],
    workload: TenantWorkload,
    max_iterations: int = 10_000,
) -> Tuple[Dict[str, DecisionRecord], int, List[float]]:
    """Async replay; additionally returns per-round client-observed latency
    in seconds (what the load generator aggregates into percentiles)."""
    import time

    simulator = workload.simulator()
    decisions: Dict[str, DecisionRecord] = {}
    rounds = 0
    latencies: List[float] = []
    for _ in range(max_iterations):
        if simulator.finished:
            break
        chunks = simulator.get_read_chunks()
        if not chunks:
            continue
        start = time.perf_counter()
        actions = list(await submit(chunks))
        latencies.append(time.perf_counter() - start)
        rounds += 1
        _record(decisions, chunks, actions)
        for chunk, action in zip(chunks, actions):
            simulator._apply_action(chunk, action.to_simulator_action(), 0.0)
    return decisions, rounds, latencies
