"""Genome substrate: synthetic sequences, viral catalogs, strains and mutation models."""

from repro.genomes.catalog import EPIDEMIC_VIRUSES, VirusRecord, genome_length_table
from repro.genomes.mutate import MutationSet, apply_mutations, random_mutations
from repro.genomes.references import ReferencePanel, build_reference_panel
from repro.genomes.sequences import (
    gc_content,
    kmer_counts,
    random_genome,
    reverse_complement,
    transcribe_errors,
    validate_sequence,
)
from repro.genomes.strains import SARS_COV_2_CLADES, StrainRecord, simulate_strain_panel

__all__ = [
    "EPIDEMIC_VIRUSES",
    "MutationSet",
    "ReferencePanel",
    "SARS_COV_2_CLADES",
    "StrainRecord",
    "VirusRecord",
    "apply_mutations",
    "build_reference_panel",
    "gc_content",
    "genome_length_table",
    "kmer_counts",
    "random_genome",
    "random_mutations",
    "reverse_complement",
    "simulate_strain_panel",
    "transcribe_errors",
    "validate_sequence",
]
