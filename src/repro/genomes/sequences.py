"""Primitive DNA sequence operations and synthetic genome generation.

The paper's experiments run on real lambda phage, SARS-CoV-2 and human reads.
Offline we synthesize genomes with controllable length and base composition;
the filter only depends on the genome's k-mer structure, which random
sequences exercise faithfully.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable, Optional

import numpy as np

BASES = "ACGT"
_COMPLEMENT = {"A": "T", "C": "G", "G": "C", "T": "A", "N": "N"}


def validate_sequence(sequence: str) -> str:
    """Return ``sequence`` upper-cased, raising ``ValueError`` on invalid bases.

    Only ``A``, ``C``, ``G``, ``T`` and the ambiguity code ``N`` are accepted.
    """
    if not isinstance(sequence, str):
        raise TypeError(f"sequence must be a str, got {type(sequence).__name__}")
    upper = sequence.upper()
    invalid = set(upper) - set("ACGTN")
    if invalid:
        raise ValueError(f"sequence contains invalid bases: {sorted(invalid)}")
    return upper


def random_genome(
    length: int,
    gc: float = 0.5,
    seed: Optional[int] = None,
    rng: Optional[np.random.Generator] = None,
) -> str:
    """Generate a random genome of ``length`` bases with the given GC content.

    Parameters
    ----------
    length:
        Number of bases to generate. Must be positive.
    gc:
        Target GC fraction in ``[0, 1]``. G and C are drawn with equal
        probability ``gc / 2`` each.
    seed:
        Seed used to build a dedicated random generator. Ignored when ``rng``
        is provided.
    rng:
        Existing generator to draw from (takes precedence over ``seed``).
    """
    if length <= 0:
        raise ValueError(f"genome length must be positive, got {length}")
    if not 0.0 <= gc <= 1.0:
        raise ValueError(f"gc content must be within [0, 1], got {gc}")
    generator = rng if rng is not None else np.random.default_rng(seed)
    at = 1.0 - gc
    probabilities = [at / 2.0, gc / 2.0, gc / 2.0, at / 2.0]
    indices = generator.choice(4, size=length, p=probabilities)
    lookup = np.frombuffer(BASES.encode("ascii"), dtype=np.uint8)
    return lookup[indices].tobytes().decode("ascii")


def reverse_complement(sequence: str) -> str:
    """Return the reverse complement of a DNA sequence."""
    upper = validate_sequence(sequence)
    return "".join(_COMPLEMENT[base] for base in reversed(upper))


def gc_content(sequence: str) -> float:
    """Return the fraction of G/C bases in ``sequence`` (N bases are ignored)."""
    upper = validate_sequence(sequence)
    counted = [base for base in upper if base != "N"]
    if not counted:
        return 0.0
    gc = sum(1 for base in counted if base in "GC")
    return gc / len(counted)


def kmer_counts(sequence: str, k: int) -> Dict[str, int]:
    """Count occurrences of every k-mer in ``sequence``.

    K-mers containing ``N`` are skipped, mirroring how real pipelines discard
    ambiguous positions.
    """
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    upper = validate_sequence(sequence)
    counts: Counter = Counter()
    for start in range(len(upper) - k + 1):
        kmer = upper[start : start + k]
        if "N" not in kmer:
            counts[kmer] += 1
    return dict(counts)


def transcribe_errors(
    sequence: str,
    substitution_rate: float = 0.0,
    insertion_rate: float = 0.0,
    deletion_rate: float = 0.0,
    rng: Optional[np.random.Generator] = None,
    seed: Optional[int] = None,
) -> str:
    """Copy ``sequence`` while injecting random sequencing-style errors.

    Used by the simulated basecaller to model imperfect base calls: each base
    is independently substituted, preceded by an insertion, or deleted.
    """
    for name, rate in (
        ("substitution_rate", substitution_rate),
        ("insertion_rate", insertion_rate),
        ("deletion_rate", deletion_rate),
    ):
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"{name} must be within [0, 1], got {rate}")
    upper = validate_sequence(sequence)
    generator = rng if rng is not None else np.random.default_rng(seed)
    output = []
    for base in upper:
        if insertion_rate and generator.random() < insertion_rate:
            output.append(BASES[generator.integers(4)])
        if deletion_rate and generator.random() < deletion_rate:
            continue
        if substitution_rate and generator.random() < substitution_rate:
            choices = [candidate for candidate in BASES if candidate != base]
            output.append(choices[generator.integers(3)])
        else:
            output.append(base)
    return "".join(output)


def hamming_distance(first: str, second: str) -> int:
    """Return the number of mismatching positions between equal-length strings."""
    if len(first) != len(second):
        raise ValueError(
            f"hamming_distance requires equal lengths, got {len(first)} and {len(second)}"
        )
    return sum(1 for a, b in zip(first, second) if a != b)


def sequence_identity(first: str, second: str) -> float:
    """Fraction of matching positions over the shorter of the two sequences."""
    if not first or not second:
        return 0.0
    length = min(len(first), len(second))
    matches = sum(1 for a, b in zip(first[:length], second[:length]) if a == b)
    return matches / length


def tile_sequence(sequence: str, window: int, stride: Optional[int] = None) -> Iterable[str]:
    """Yield windows of ``sequence`` of size ``window`` advancing by ``stride``."""
    if window <= 0:
        raise ValueError(f"window must be positive, got {window}")
    step = stride if stride is not None else window
    if step <= 0:
        raise ValueError(f"stride must be positive, got {step}")
    upper = validate_sequence(sequence)
    for start in range(0, max(len(upper) - window + 1, 1), step):
        yield upper[start : start + window]
