"""Reference genome panels used throughout the experiments.

The paper evaluates on three datasets: lambda phage (sequenced in the
authors' lab), SARS-CoV-2 (CADDE Centre), and human background reads
(ONT open datasets). We synthesize scaled equivalents. Genome lengths are
configurable; the defaults are scaled down from the real organisms so that
the pure-Python sDTW experiments complete quickly, while the scaling keeps
the target/background ratio of k-mer novelty intact.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.genomes.sequences import random_genome, validate_sequence

# Real genome lengths, for reference and for full-scale runs.
REAL_GENOME_LENGTHS = {
    "lambda": 48_502,
    "sars_cov_2": 29_903,
    "human": 3_100_000_000,
}

# Scaled defaults: long enough for minimizer seeding and realistic sDTW cost
# separation, short enough that a 2000-sample query aligns in milliseconds.
DEFAULT_SCALED_LENGTHS = {
    "lambda": 4_800,
    "sars_cov_2": 3_000,
    "human": 24_000,
}


@dataclass
class ReferencePanel:
    """A named collection of reference genomes for one experiment.

    ``target_name`` identifies the genome loaded onto the filter;
    ``background_name`` identifies the non-target (host) genome.
    """

    genomes: Dict[str, str] = field(default_factory=dict)
    target_name: str = "sars_cov_2"
    background_name: str = "human"

    def __post_init__(self) -> None:
        for name, sequence in self.genomes.items():
            self.genomes[name] = validate_sequence(sequence)

    def add(self, name: str, sequence: str) -> None:
        self.genomes[name] = validate_sequence(sequence)

    def __contains__(self, name: str) -> bool:
        return name in self.genomes

    def __getitem__(self, name: str) -> str:
        return self.genomes[name]

    @property
    def target(self) -> str:
        return self.genomes[self.target_name]

    @property
    def background(self) -> str:
        return self.genomes[self.background_name]

    def lengths(self) -> Dict[str, int]:
        return {name: len(sequence) for name, sequence in self.genomes.items()}


def build_reference_panel(
    target: str = "sars_cov_2",
    background: str = "human",
    lengths: Optional[Dict[str, int]] = None,
    seed: int = 20211018,
    gc: float = 0.42,
) -> ReferencePanel:
    """Build the standard synthetic panel (target virus + human background).

    Each genome draws from an independent seed derived from ``seed`` so that
    target and background share no structure beyond chance k-mer overlap,
    mirroring the real situation of viral versus host DNA.
    """
    sizes = dict(DEFAULT_SCALED_LENGTHS)
    if lengths:
        sizes.update(lengths)
    panel = ReferencePanel(target_name=target, background_name=background)
    wanted = {target, background}
    # Always include the three canonical genomes so experiments can mix them.
    wanted.update(("lambda", "sars_cov_2", "human"))
    for offset, name in enumerate(sorted(wanted)):
        if name not in sizes:
            raise KeyError(
                f"no length configured for genome {name!r}; pass it via `lengths`"
            )
        panel.add(name, random_genome(sizes[name], gc=gc, seed=seed + 1009 * offset))
    return panel


def scaled_length(name: str, scale: float = 0.1) -> int:
    """Scale a real genome length down by ``scale`` (at least 1000 bases)."""
    if name not in REAL_GENOME_LENGTHS:
        raise KeyError(f"unknown genome {name!r}")
    if scale <= 0:
        raise ValueError(f"scale must be positive, got {scale}")
    return max(1000, int(REAL_GENOME_LENGTHS[name] * scale))
