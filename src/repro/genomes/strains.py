"""SARS-CoV-2 strain panel (paper Table 2).

Table 2 of the paper reports, for five NextStrain clades, the number of
single-base mutations each assembled genome carries relative to the original
Wuhan reference (no insertions or deletions were observed). We regenerate the
panel by applying exactly that many random substitutions to a synthetic
reference, which is all the downstream robustness analysis (Fig. 19) depends
on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.genomes.mutate import MutationSet, apply_mutations, mutation_distance, random_mutations


@dataclass(frozen=True)
class CladeRecord:
    """One row of Table 2: clade name, mutation count and provenance."""

    clade: str
    mutations: int
    gisaid_id: str
    lab: str
    country: str


# Table 2 of the paper, verbatim.
SARS_COV_2_CLADES: Sequence[CladeRecord] = (
    CladeRecord("19A", 23, "593737", "SE Area Lab Services", "Australia"),
    CladeRecord("19B", 18, "614393", "Bouake CHU Lab", "Ivory Coast"),
    CladeRecord("20A", 22, "644615", "Dept. Clinical Microbiology", "Belgium"),
    CladeRecord("20B", 17, "602902", "NHLS-IALCH", "South Africa"),
    CladeRecord("20C", 17, "582807", "Public Health Agency", "Sweden"),
)


@dataclass
class StrainRecord:
    """A synthetic strain genome plus the mutations applied to produce it."""

    clade: str
    genome: str
    mutation_set: MutationSet

    @property
    def mutation_count(self) -> int:
        return len(self.mutation_set)


def simulate_strain_panel(
    reference: str,
    clades: Sequence[CladeRecord] = SARS_COV_2_CLADES,
    seed: Optional[int] = 7,
) -> List[StrainRecord]:
    """Apply each clade's reported mutation count to ``reference``.

    The panel only contains substitutions (Table 2 observed no indels), so the
    resulting genomes keep the reference length.
    """
    generator = np.random.default_rng(seed)
    panel: List[StrainRecord] = []
    for record in clades:
        mutation_set = random_mutations(
            reference,
            substitutions=record.mutations,
            rng=generator,
            reference_name=record.clade,
        )
        genome = apply_mutations(reference, mutation_set)
        panel.append(StrainRecord(clade=record.clade, genome=genome, mutation_set=mutation_set))
    return panel


def strain_mutation_table(
    reference: str,
    panel: Sequence[StrainRecord],
) -> List[Dict[str, object]]:
    """Regenerate Table 2 rows from a simulated panel, verifying the counts."""
    rows: List[Dict[str, object]] = []
    by_clade = {record.clade: record for record in SARS_COV_2_CLADES}
    for strain in panel:
        observed = mutation_distance(reference, strain.genome)
        expected = by_clade[strain.clade].mutations if strain.clade in by_clade else None
        rows.append(
            {
                "clade": strain.clade,
                "mutations": observed,
                "expected_mutations": expected,
                "gisaid_id": by_clade[strain.clade].gisaid_id if strain.clade in by_clade else "",
                "country": by_clade[strain.clade].country if strain.clade in by_clade else "",
            }
        )
    return rows


def max_strain_divergence(panel: Sequence[StrainRecord]) -> int:
    """Largest mutation count in the panel (used for the robustness argument)."""
    if not panel:
        return 0
    return max(strain.mutation_count for strain in panel)
