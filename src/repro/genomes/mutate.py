"""Mutation models applied to reference genomes.

Used for two experiments in the paper:

* Table 2 — strain panels with a known number of single-base substitutions
  relative to the Wuhan reference.
* Figure 19 — robustness of the filter when the sequenced strain differs from
  the on-device reference by a growing number of random mutations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.genomes.sequences import BASES, validate_sequence


@dataclass(frozen=True)
class Mutation:
    """A single point mutation.

    ``kind`` is one of ``"substitution"``, ``"insertion"`` or ``"deletion"``.
    ``position`` indexes the reference genome; ``base`` is the substituted or
    inserted base (empty for deletions).
    """

    position: int
    kind: str
    base: str = ""

    def __post_init__(self) -> None:
        if self.kind not in ("substitution", "insertion", "deletion"):
            raise ValueError(f"unknown mutation kind: {self.kind!r}")
        if self.position < 0:
            raise ValueError(f"mutation position must be non-negative, got {self.position}")
        if self.kind in ("substitution", "insertion") and (
            len(self.base) != 1 or self.base not in BASES
        ):
            raise ValueError(f"mutation base must be one of {BASES}, got {self.base!r}")


@dataclass
class MutationSet:
    """An ordered collection of mutations relative to one reference."""

    reference_name: str
    mutations: List[Mutation] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.mutations)

    def __iter__(self):
        return iter(self.mutations)

    @property
    def substitution_count(self) -> int:
        return sum(1 for mutation in self.mutations if mutation.kind == "substitution")

    @property
    def indel_count(self) -> int:
        return sum(1 for mutation in self.mutations if mutation.kind != "substitution")

    def positions(self) -> List[int]:
        return [mutation.position for mutation in self.mutations]


def random_mutations(
    reference: str,
    substitutions: int,
    insertions: int = 0,
    deletions: int = 0,
    seed: Optional[int] = None,
    rng: Optional[np.random.Generator] = None,
    reference_name: str = "reference",
) -> MutationSet:
    """Draw a random set of mutations against ``reference``.

    Substitution positions are sampled without replacement so the requested
    count is exact, matching how Table 2 reports distinct mutated sites.
    """
    sequence = validate_sequence(reference)
    total_subs = substitutions
    if total_subs < 0 or insertions < 0 or deletions < 0:
        raise ValueError("mutation counts must be non-negative")
    if total_subs + deletions > len(sequence):
        raise ValueError(
            "requested more substitutions and deletions than reference positions "
            f"({total_subs + deletions} > {len(sequence)})"
        )
    generator = rng if rng is not None else np.random.default_rng(seed)
    mutations: List[Mutation] = []

    taken = generator.choice(len(sequence), size=total_subs + deletions, replace=False)
    substitution_positions = taken[:total_subs]
    deletion_positions = taken[total_subs:]

    for position in sorted(int(p) for p in substitution_positions):
        original = sequence[position]
        alternatives = [base for base in BASES if base != original]
        base = alternatives[int(generator.integers(len(alternatives)))]
        mutations.append(Mutation(position=position, kind="substitution", base=base))

    for position in sorted(int(p) for p in deletion_positions):
        mutations.append(Mutation(position=position, kind="deletion"))

    for _ in range(insertions):
        position = int(generator.integers(len(sequence) + 1))
        base = BASES[int(generator.integers(4))]
        mutations.append(Mutation(position=position, kind="insertion", base=base))

    mutations.sort(key=lambda mutation: (mutation.position, mutation.kind))
    return MutationSet(reference_name=reference_name, mutations=mutations)


def apply_mutations(reference: str, mutation_set: MutationSet) -> str:
    """Apply ``mutation_set`` to ``reference`` and return the mutated genome."""
    sequence = list(validate_sequence(reference))
    substituted = set()
    deleted = set()
    insertions: List[Tuple[int, str]] = []

    for mutation in mutation_set:
        if mutation.kind == "substitution":
            if mutation.position >= len(sequence):
                raise ValueError(
                    f"substitution at {mutation.position} beyond reference length {len(sequence)}"
                )
            if mutation.position in substituted:
                raise ValueError(f"duplicate substitution at position {mutation.position}")
            sequence[mutation.position] = mutation.base
            substituted.add(mutation.position)
        elif mutation.kind == "deletion":
            if mutation.position >= len(sequence):
                raise ValueError(
                    f"deletion at {mutation.position} beyond reference length {len(sequence)}"
                )
            deleted.add(mutation.position)
        else:
            insertions.append((mutation.position, mutation.base))

    result: List[str] = []
    insertion_map: dict = {}
    for position, base in insertions:
        insertion_map.setdefault(position, []).append(base)

    for index, base in enumerate(sequence):
        if index in insertion_map:
            result.extend(insertion_map[index])
        if index not in deleted:
            result.append(base)
    if len(sequence) in insertion_map:
        result.extend(insertion_map[len(sequence)])
    return "".join(result)


def mutation_distance(reference: str, mutated: str) -> int:
    """Count mismatching positions between two equal-length genomes.

    Convenience used when verifying that a synthetic strain carries exactly
    the requested number of substitutions (Table 2 genomes carry no indels).
    """
    if len(reference) != len(mutated):
        raise ValueError("mutation_distance only supports substitution-only genomes")
    return sum(1 for a, b in zip(reference, mutated) if a != b)


def mutated_reference_series(
    reference: str,
    mutation_counts: Sequence[int],
    seed: Optional[int] = None,
) -> List[Tuple[int, str]]:
    """Produce genomes carrying increasing numbers of random substitutions.

    Drives Figure 19: the filter keeps its reference fixed while the sequenced
    strain drifts away by ``mutation_counts`` substitutions.
    """
    generator = np.random.default_rng(seed)
    series: List[Tuple[int, str]] = []
    for count in mutation_counts:
        mutation_set = random_mutations(reference, substitutions=count, rng=generator)
        series.append((count, apply_mutations(reference, mutation_set)))
    return series
