"""Catalog of epidemic virus genomes (paper Figure 10).

The paper motivates the accelerator's fixed reference buffer size by noting
that nearly all epidemic viruses have genomes shorter than 100 kb
(single-stranded) or 50 kb (double-stranded), the two exceptions being
smallpox and herpes simplex. This module records that catalog so Figure 10
and the reference-buffer sizing analysis can be regenerated.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple


@dataclass(frozen=True)
class VirusRecord:
    """One epidemic virus: genome length, strandedness and nucleic acid type."""

    name: str
    genome_length: int
    nucleic_acid: str  # "RNA" or "DNA"
    stranded: str  # "single" or "double"

    def __post_init__(self) -> None:
        if self.genome_length <= 0:
            raise ValueError(f"genome_length must be positive, got {self.genome_length}")
        if self.nucleic_acid not in ("RNA", "DNA"):
            raise ValueError(f"nucleic_acid must be RNA or DNA, got {self.nucleic_acid!r}")
        if self.stranded not in ("single", "double"):
            raise ValueError(f"stranded must be single or double, got {self.stranded!r}")

    @property
    def effective_reference_length(self) -> int:
        """Reference bases the filter must hold (both strands for dsDNA)."""
        if self.stranded == "double":
            return 2 * self.genome_length
        return self.genome_length


# Approximate genome lengths (bases) for the epidemic viruses shown in the
# paper's Figure 10, drawn from public genome size references.
EPIDEMIC_VIRUSES: Tuple[VirusRecord, ...] = (
    VirusRecord("Hepatitis B", 3_200, "DNA", "double"),
    VirusRecord("Rhinovirus", 7_200, "RNA", "single"),
    VirusRecord("Hepatitis A", 7_500, "RNA", "single"),
    VirusRecord("Poliovirus", 7_500, "RNA", "single"),
    VirusRecord("Norovirus", 7_600, "RNA", "single"),
    VirusRecord("West Nile virus", 11_000, "RNA", "single"),
    VirusRecord("Dengue virus", 10_700, "RNA", "single"),
    VirusRecord("Zika virus", 10_800, "RNA", "single"),
    VirusRecord("Yellow fever virus", 11_000, "RNA", "single"),
    VirusRecord("Rabies virus", 12_000, "RNA", "single"),
    VirusRecord("Hepatitis C", 9_600, "RNA", "single"),
    VirusRecord("Influenza A", 13_500, "RNA", "single"),
    VirusRecord("Measles virus", 15_900, "RNA", "single"),
    VirusRecord("Mumps virus", 15_300, "RNA", "single"),
    VirusRecord("Ebola virus", 19_000, "RNA", "single"),
    VirusRecord("Marburg virus", 19_100, "RNA", "single"),
    VirusRecord("Lassa virus", 10_700, "RNA", "single"),
    VirusRecord("MERS-CoV", 30_100, "RNA", "single"),
    VirusRecord("SARS-CoV", 29_700, "RNA", "single"),
    VirusRecord("SARS-CoV-2", 29_903, "RNA", "single"),
    VirusRecord("HIV-1", 9_700, "RNA", "single"),
    VirusRecord("Mpox virus", 197_000, "DNA", "double"),
    VirusRecord("Smallpox (Variola)", 186_000, "DNA", "double"),
    VirusRecord("Herpes simplex 1", 152_000, "DNA", "double"),
    VirusRecord("Lambda phage", 48_502, "DNA", "double"),
)

# The paper's provisioned limits (Section 4.4): single-stranded genomes up to
# 100 kb, equivalently double-stranded genomes up to 50 kb.
MAX_SINGLE_STRANDED_LENGTH = 100_000
MAX_DOUBLE_STRANDED_LENGTH = 50_000


def genome_length_table(records: Tuple[VirusRecord, ...] = EPIDEMIC_VIRUSES) -> List[Dict[str, object]]:
    """Return Figure 10 as rows sorted by genome length."""
    rows = [
        {
            "virus": record.name,
            "genome_length": record.genome_length,
            "nucleic_acid": record.nucleic_acid,
            "stranded": record.stranded,
            "fits_filter": supported_by_filter(record),
        }
        for record in records
    ]
    rows.sort(key=lambda row: row["genome_length"])
    return rows


def supported_by_filter(record: VirusRecord) -> bool:
    """Whether the accelerator's reference buffer can hold this virus."""
    if record.stranded == "single":
        return record.genome_length <= MAX_SINGLE_STRANDED_LENGTH
    return record.genome_length <= MAX_DOUBLE_STRANDED_LENGTH


def supported_fraction(records: Tuple[VirusRecord, ...] = EPIDEMIC_VIRUSES) -> float:
    """Fraction of catalog viruses the provisioned filter supports."""
    if not records:
        return 0.0
    supported = sum(1 for record in records if supported_by_filter(record))
    return supported / len(records)


def lookup(name: str, records: Tuple[VirusRecord, ...] = EPIDEMIC_VIRUSES) -> VirusRecord:
    """Find a catalog record by (case-insensitive) name."""
    wanted = name.strip().lower()
    for record in records:
        if record.name.lower() == wanted:
            return record
    raise KeyError(f"virus {name!r} not present in catalog")
