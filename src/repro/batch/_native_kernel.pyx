# cython: language_level=3
# cython: boundscheck=False
# cython: wraparound=False
# cython: cdivision=True
"""Ahead-of-time compiled twin of the native scalar wavefront kernel.

Same contract as :func:`repro.batch.native.advance_scalar_kernel` (advance
lane-stacked ``rows``/``runs`` in place, per-block active spans, per-lane
kill bounds with a real mid-round break, return the DP cells computed) with
bit-identical results: all arithmetic is exact integer arithmetic in the
same evaluation order. Built as an optional extension by ``setup.py`` when
Cython is installed (``pip install -e .[native]``); :class:`NativeBackend`
selects it automatically when it imports, so deployments without a JIT get
the compiled path too.
"""

import numpy as np

from libc.stdint cimport int32_t, int64_t, uint8_t
from libc.stdlib cimport free, malloc

ctypedef fused work_t:
    int32_t
    int64_t


def advance_scalar_kernel(
    rows,
    runs,
    query_flat,
    query_offsets,
    reference,
    bonus,
    cap,
    kill,
    fresh,
    block_lo,
    block_hi,
    big,
):
    """Dispatch to the typed kernel matching the caller's working dtype.

    ``rows``/``runs``/``query_flat``/``reference`` share one integer dtype
    (int32 fast path or int64), exactly as :class:`NativeBackend` prepares
    them; ``fresh`` is a bool array viewed as bytes for the typed loop.
    """
    return _advance(
        rows,
        runs,
        query_flat,
        query_offsets,
        reference,
        bonus,
        cap,
        kill,
        np.ascontiguousarray(fresh).view(np.uint8),
        block_lo,
        block_hi,
        big,
    )


def _advance(
    work_t[:, ::1] rows,
    work_t[:, ::1] runs,
    work_t[::1] query_flat,
    int64_t[::1] query_offsets,
    work_t[::1] reference,
    long long bonus,
    long long cap,
    double[::1] kill,
    uint8_t[::1] fresh,
    int64_t[::1] block_lo,
    int64_t[::1] block_hi,
    long long big,
):
    cdef Py_ssize_t n_lanes = rows.shape[0]
    cdef Py_ssize_t n_columns = rows.shape[1]
    cdef Py_ssize_t n_blocks = block_lo.shape[0]
    cdef Py_ssize_t cells = 0
    cdef Py_ssize_t lane, block
    cdef int64_t begin, end, steps, step, j
    cdef int64_t first_live, last_live, reach, span_lo, span_hi
    cdef double bound
    cdef long long value, first, d, previous, old_run, new_run, new_value
    cdef long long diagonal, row_min, capped
    cdef bint alive
    cdef int64_t* lo = <int64_t*> malloc(n_blocks * sizeof(int64_t))
    cdef int64_t* hi = <int64_t*> malloc(n_blocks * sizeof(int64_t))
    if lo == NULL or hi == NULL:
        free(lo)
        free(hi)
        raise MemoryError("could not allocate per-block span scratch")
    try:
        for lane in range(n_lanes):
            begin = query_offsets[lane]
            end = query_offsets[lane + 1]
            if end == begin:
                continue
            bound = kill[lane]
            if fresh[lane]:
                first = query_flat[begin]
                for j in range(n_columns):
                    d = first - reference[j]
                    rows[lane, j] = <work_t> (d if d >= 0 else -d)
                    runs[lane, j] = 1
                cells += n_columns
                begin += 1
            steps = end - begin
            if steps == 0:
                continue
            # Per-block active spans: [first live, last live + 1 + steps)
            # clipped to the block — information moves one column rightward
            # per step and never crosses a block boundary.
            alive = False
            for block in range(n_blocks):
                first_live = -1
                last_live = -1
                for j in range(block_lo[block], block_hi[block]):
                    if rows[lane, j] <= bound:
                        if first_live < 0:
                            first_live = j
                        last_live = j
                lo[block] = first_live
                if first_live >= 0:
                    alive = True
                    reach = last_live + 1 + steps
                    hi[block] = reach if reach < block_hi[block] else block_hi[block]
            if not alive:
                continue  # early abandon: the whole round's work is skipped
            for step in range(steps):
                value = query_flat[begin + step]
                row_min = big
                for block in range(n_blocks):
                    span_lo = lo[block]
                    if span_lo < 0:
                        continue
                    span_hi = hi[block]
                    diagonal = big
                    for j in range(span_lo, span_hi):
                        previous = rows[lane, j]
                        old_run = runs[lane, j]
                        d = value - reference[j]
                        if d < 0:
                            d = -d
                        if diagonal < previous:
                            new_value = d + diagonal
                            new_run = 1
                        else:
                            new_value = d + previous
                            new_run = old_run + 1
                            if new_run > cap:
                                new_run = cap
                        capped = old_run if old_run < cap else cap
                        diagonal = previous - bonus * capped
                        rows[lane, j] = <work_t> new_value
                        if bonus != 0:
                            # track_runs=False semantics: capped counters, and
                            # without a bonus the counters pass through
                            # untouched.
                            runs[lane, j] = <work_t> new_run
                        if new_value < row_min:
                            row_min = new_value
                    cells += span_hi - span_lo
                if row_min > bound:
                    # The real break: every live value just crossed the kill
                    # bound, so the remaining steps cannot produce a cost at
                    # or below the decision bound — freeze the lane mid-round.
                    break
    finally:
        free(lo)
        free(hi)
    return cells
