"""The ``"native"`` execution backend: a compiled scalar-loop wavefront.

:class:`NativeBackend` ports the int32 fast path of
:func:`repro.core.sdtw._advance_batch_int32` to a Numba ``njit`` scalar loop.
The vectorized kernels express pruning as masked array operations — every
lane still sweeps whole span widths per step, and early abandoning can only
skip *future rounds*. A scalar loop prunes the way UCRSuite does: the kill
comparison is a real ``break``, so an abandoned lane stops mid-round after
the exact step its running row minimum crossed the bound, and the per-block
active spans bound each step's inner loop directly.

Kernel contract (shared with the vectorized pruned path, see
:func:`repro.core.sdtw.sdtw_resume_batch`):

* every output cost at or below the caller's decision bound is bit-identical
  to the brute-force advance;
* frozen columns keep their exact last-computed value (which is provably
  above the kill bound), never a sentinel — so resumption and the int32
  value-range analysis stay exact;
* with an infinite kill bound the loop degenerates to the plain recurrence
  and outputs are bit-identical to every other backend, pruned or not.

The kernel itself has two compiled builds sharing one contract: the Numba
``njit`` of :func:`advance_scalar_kernel`, and an ahead-of-time Cython
extension (``repro.batch._native_kernel``, built from ``_native_kernel.pyx``
by ``pip install -e .[native]``) for deployments without a JIT. The backend
prefers the Cython build when it imports, falls back to Numba, and —
``jit=False`` / ``kernel="python"`` — runs the identical kernel as pure
Python, which is how the test suite covers this backend's code path
bit-for-bit on machines (and CI runners) with neither. Like ``"gpu"``
without CuPy, the name is always registered so configs naming ``"native"``
validate everywhere; *constructing* the backend with no compiled kernel
available raises a :class:`RuntimeError` with an install hint.

Configurations outside the integer data path (float kernels, squared
distance, fractional bonus) fall back to the inherited
:class:`~repro.batch.backends.NumpyBackend` advance for the round, in the
spirit of per-workload kernel-variant selection rather than hard failure.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.core.config import SDTWConfig
from repro.core.sdtw import reduce_block_minima
from repro.batch.backends import NumpyBackend, register_backend

__all__ = [
    "NativeBackend",
    "advance_scalar_kernel",
    "cython_kernel_available",
    "numba_available",
]


def numba_available() -> bool:
    """Whether the Numba JIT is importable in this interpreter."""
    try:
        import numba  # noqa: F401
    except ImportError:
        return False
    return True


# The optional ahead-of-time compiled kernel (repro.batch._native_kernel,
# built from _native_kernel.pyx by `pip install -e .[native]`). Probed once
# per process; None when the extension was never built.
_CYTHON_KERNEL = None
_CYTHON_PROBED = False


def _cython_kernel():
    global _CYTHON_KERNEL, _CYTHON_PROBED
    if not _CYTHON_PROBED:
        _CYTHON_PROBED = True
        try:
            from repro.batch import _native_kernel
        except ImportError:
            _CYTHON_KERNEL = None
        else:
            _CYTHON_KERNEL = _native_kernel.advance_scalar_kernel
    return _CYTHON_KERNEL


def cython_kernel_available() -> bool:
    """Whether the compiled Cython kernel extension is importable."""
    return _cython_kernel() is not None


def advance_scalar_kernel(
    rows: np.ndarray,
    runs: np.ndarray,
    query_flat: np.ndarray,
    query_offsets: np.ndarray,
    reference: np.ndarray,
    bonus: int,
    cap: int,
    kill: np.ndarray,
    fresh: np.ndarray,
    block_lo: np.ndarray,
    block_hi: np.ndarray,
    big: int,
) -> int:
    """Scalar wavefront over lane-stacked state, pruned by per-lane kill bounds.

    Advances ``rows``/``runs`` **in place** (lane ``l``'s new samples are
    ``query_flat[query_offsets[l]:query_offsets[l + 1]]``) and returns the
    number of DP cells actually computed. ``runs`` hold capped dwell counters
    (``track_runs=False`` semantics). ``kill[l]`` is the lane's kill bound
    (``inf`` = never prune): per block, only the span from the first live
    column to one past the last live column plus the step count is swept, a
    severed diagonal at each span's left edge (it can only raise values that
    are already provably dead), and a step whose running row minimum exceeds
    the bound breaks out of the lane — every remaining cell stays frozen at
    its exact partial value, which is itself above the bound.

    This body is what :class:`NativeBackend` feeds to ``numba.njit``; it is
    also a correct (slow) pure-Python/NumPy-scalar kernel, which is how the
    bit-identity suite exercises it without a JIT.
    """
    n_lanes = rows.shape[0]
    n_blocks = block_lo.shape[0]
    cells = 0
    for lane in range(n_lanes):
        begin = query_offsets[lane]
        end = query_offsets[lane + 1]
        if end == begin:
            continue
        bound = kill[lane]
        if fresh[lane]:
            first = query_flat[begin]
            for j in range(rows.shape[1]):
                d = first - reference[j]
                rows[lane, j] = d if d >= 0 else -d
                runs[lane, j] = 1
            cells += rows.shape[1]
            begin += 1
        steps = end - begin
        if steps == 0:
            continue
        # Per-block active spans: [first live, last live + 1 + steps) clipped
        # to the block — information moves one column rightward per step and
        # never crosses a block boundary.
        lo = np.empty(n_blocks, np.int64)
        hi = np.empty(n_blocks, np.int64)
        alive = False
        for block in range(n_blocks):
            first_live = -1
            last_live = -1
            for j in range(block_lo[block], block_hi[block]):
                if rows[lane, j] <= bound:
                    if first_live < 0:
                        first_live = j
                    last_live = j
            lo[block] = first_live
            if first_live >= 0:
                alive = True
                reach = last_live + 1 + steps
                hi[block] = reach if reach < block_hi[block] else block_hi[block]
        if not alive:
            continue  # early abandon: the whole round's work is skipped
        for step in range(steps):
            value = query_flat[begin + step]
            row_min = big
            for block in range(n_blocks):
                span_lo = lo[block]
                if span_lo < 0:
                    continue
                span_hi = hi[block]
                diagonal = big
                for j in range(span_lo, span_hi):
                    previous = rows[lane, j]
                    old_run = runs[lane, j]
                    d = value - reference[j]
                    if d < 0:
                        d = -d
                    if diagonal < previous:
                        new_value = d + diagonal
                        new_run = 1
                    else:
                        new_value = d + previous
                        new_run = old_run + 1
                        if new_run > cap:
                            new_run = cap
                    capped = old_run if old_run < cap else cap
                    diagonal = previous - bonus * capped
                    rows[lane, j] = new_value
                    if bonus != 0:
                        # track_runs=False semantics: capped counters, and
                        # without a bonus the counters pass through untouched.
                        runs[lane, j] = new_run
                    if new_value < row_min:
                        row_min = new_value
                cells += span_hi - span_lo
            if row_min > bound:
                # The real break: every live value just crossed the kill
                # bound, so the remaining steps cannot produce a cost at or
                # below the decision bound — freeze the lane mid-round.
                break
    return cells


# One compiled kernel per process, shared by every NativeBackend instance.
_COMPILED = None


def _compiled_kernel():
    global _COMPILED
    if _COMPILED is None:
        import numba

        _COMPILED = numba.njit(cache=True)(advance_scalar_kernel)
    return _COMPILED


@register_backend("native")
class NativeBackend(NumpyBackend):
    """In-process execution through the compiled scalar-loop kernel.

    Holds the same resident :class:`BatchSDTWState` as
    :class:`~repro.batch.backends.NumpyBackend` (gather/scatter/reset/allocate
    are inherited); only ``advance`` differs. Integer-data-path rounds
    (quantized, absolute distance, whole-number bonus — the hardware
    configuration) run the scalar kernel on ``int32`` arrays when the value
    range allows, ``int64`` otherwise; any other configuration falls back to
    the inherited vectorized advance for the round.

    ``kernel`` pins the kernel build: ``"cython"`` (the AOT extension),
    ``"numba"``, ``"python"``, or ``"auto"`` (default with ``jit=True``:
    Cython when built, else Numba). ``jit=False`` is the back-compatible
    spelling of ``kernel="python"``. All builds are bit-identical.
    """

    backend_name = "native"

    def __init__(
        self,
        reference: np.ndarray,
        config: Optional[SDTWConfig] = None,
        capacity: int = 8,
        block_starts: Optional[np.ndarray] = None,
        tile_columns: Optional[int] = None,
        jit: bool = True,
        kernel: Optional[str] = None,
    ) -> None:
        self.jit = bool(jit)
        if kernel is None:
            kernel = "auto" if self.jit else "python"
        if kernel not in ("auto", "cython", "numba", "python"):
            raise ValueError(
                f"kernel must be one of auto, cython, numba, python; got {kernel!r}"
            )
        # Compiled-kernel preference: the AOT Cython extension when it was
        # built (no JIT warm-up, works without Numba), the Numba njit kernel
        # otherwise; "python" is the uncompiled escape hatch the bit-identity
        # suite runs everywhere.
        if kernel == "auto":
            if cython_kernel_available():
                kernel = "cython"
            elif numba_available():
                kernel = "numba"
            else:
                raise RuntimeError(
                    "the 'native' execution backend needs a compiled scalar "
                    "kernel: pip install numba, or build the Cython extension "
                    "with pip install -e .[native] (or pass jit=False to run "
                    "the identical kernel as pure Python)"
                )
        elif kernel == "cython" and not cython_kernel_available():
            raise RuntimeError(
                "the compiled Cython kernel (repro.batch._native_kernel) is "
                "not built; pip install -e .[native] (or python setup.py "
                "build_ext --inplace) builds it"
            )
        elif kernel == "numba" and not numba_available():
            raise RuntimeError(
                "the 'native' execution backend compiles its scalar kernel with "
                "Numba, which is not installed; pip install numba (or pass "
                "jit=False to run the identical kernel as pure Python)"
            )
        self.kernel_name = kernel
        super().__init__(
            reference,
            config=config,
            capacity=capacity,
            block_starts=block_starts,
            tile_columns=tile_columns,
        )
        cfg = self.config
        self._scalar_eligible = (
            cfg.quantize
            and cfg.distance == "absolute"
            and float(cfg.match_bonus).is_integer()
            and not cfg.allow_reference_deletions
        )
        self._block_lo = self.block_starts.astype(np.int64)
        self._block_hi = np.append(
            self._block_lo[1:], np.int64(self.reference_values.size)
        )

    def _kernel(self):
        if self.kernel_name == "cython":
            return _cython_kernel()
        if self.kernel_name == "numba":
            return _compiled_kernel()
        return advance_scalar_kernel

    def advance(
        self,
        lanes: np.ndarray,
        queries: Sequence[np.ndarray],
        prune_bounds: Optional[np.ndarray] = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        if not self._scalar_eligible:
            return super().advance(lanes, queries, prune_bounds=prune_bounds)
        tracer = self.tracer
        with tracer.span("backend.advance", backend="native", n_lanes=int(np.size(lanes))):
            lanes = np.asarray(lanes, dtype=np.intp)
            lane_queries = [np.asarray(query, dtype=np.int64) for query in queries]
            lengths = [int(query.size) for query in lane_queries]
            reference_length = int(self.reference_values.size)

            with tracer.span("backend.gather"):
                samples = self._state.samples_processed[lanes]
                rows64 = self._state.rows[lanes]
                runs64 = self._state.runs[lanes]

            # The scalar loop carries bonus * min(run, cap) through plain
            # integer arithmetic; int32 storage needs every intermediate to
            # stay far from the sentinel, exactly like _advance_batch_int32.
            bonus = int(self.config.match_bonus)
            cap = int(self.config.match_bonus_cap)
            value_bound = max(
                max((int(np.abs(query).max()) for query in lane_queries if query.size), default=0),
                int(np.abs(self.reference_values).max()),
            )
            rows_bound = int(np.abs(rows64).max()) if rows64.size else 0
            growth = (2 * value_bound + bonus + 1) * max(lengths, default=0)
            use_int32 = (
                cap * bonus < 2**28 and rows_bound + growth < 2**28
            )
            work_dtype = np.int32 if use_int32 else np.int64
            big = int(2**29 if use_int32 else 2**40)

            rows = np.ascontiguousarray(rows64, dtype=work_dtype)
            runs = np.ascontiguousarray(runs64, dtype=work_dtype)
            # runs enter the recurrence only through min(run, cap); cap the
            # stored counters up front so resumed int64 counters from another
            # backend's state cannot overflow the int32 working arrays.
            np.minimum(runs, cap if bonus else np.iinfo(work_dtype).max, out=runs)
            reference = np.ascontiguousarray(self.reference_values, dtype=work_dtype)
            offsets = np.zeros(len(lane_queries) + 1, dtype=np.int64)
            np.cumsum(lengths, out=offsets[1:])
            query_flat = np.empty(int(offsets[-1]), dtype=work_dtype)
            for index, query in enumerate(lane_queries):
                query_flat[offsets[index] : offsets[index + 1]] = query
            fresh = np.asarray(
                [lengths[i] > 0 and int(samples[i]) == 0 for i in range(len(lengths))],
                dtype=np.bool_,
            )
            if prune_bounds is None:
                kill = np.full(len(lane_queries), np.inf, dtype=np.float64)
            else:
                kill = np.asarray(prune_bounds, dtype=np.float64).ravel()
                if kill.shape[0] != len(lane_queries):
                    raise ValueError(
                        f"prune_bounds has {kill.shape[0]} entries "
                        f"but {len(lane_queries)} lanes were given"
                    )

            with tracer.span("backend.wavefront"):
                cells = int(
                    self._kernel()(
                        rows,
                        runs,
                        query_flat,
                        offsets,
                        reference,
                        bonus,
                        cap,
                        kill,
                        fresh,
                        self._block_lo,
                        self._block_hi,
                        big,
                    )
                )
            nominal = sum(lengths) * reference_length
            self.stats.add(cells, nominal - cells)

            with tracer.span("backend.scatter"):
                self._state.rows[lanes] = rows
                self._state.runs[lanes] = runs
                self._state.samples_processed[lanes] = samples + np.asarray(
                    lengths, dtype=np.int64
                )
            with tracer.span("backend.reduce"):
                return reduce_block_minima(
                    rows.astype(np.int64, copy=False), self.block_starts
                )
