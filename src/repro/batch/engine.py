"""The batched sDTW execution engine.

:class:`BatchSDTWEngine` owns the lane-stacked resumable state behind one
reference squiggle: reads are *admitted* to a free lane when their first
chunk arrives, every polling round advances all lanes that received signal
with a single :func:`~repro.core.sdtw.sdtw_resume_batch` wavefront, and
decided reads are *retired* so their lane is recycled. Lane storage grows by
doubling, so the engine serves any number of concurrent channels.

The engine also records a :class:`BatchRound` per ``step`` call — how many
lanes advanced and how many query samples they consumed. That occupancy
trace is exactly the request stream the accelerator's multi-tile dispatch
model wants: :meth:`repro.hardware.scheduler.TileScheduler.simulate_batch_trace`
replays it against a tile count instead of assuming a synthetic Poisson
request rate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.config import SDTWConfig
from repro.core.sdtw import BatchSDTWState, SDTWState, sdtw_resume_batch

__all__ = ["BatchRound", "BatchSDTWEngine", "LaneSnapshot"]


@dataclass(frozen=True)
class BatchRound:
    """Occupancy record of one engine step: the batch the wavefront advanced."""

    index: int
    n_lanes: int
    n_samples: int


@dataclass(frozen=True)
class LaneSnapshot:
    """One lane's alignment progress after a step."""

    key: Hashable
    cost: float
    end_position: int
    samples_processed: int

    @property
    def per_sample_cost(self) -> float:
        return self.cost / max(self.samples_processed, 1)


class BatchSDTWEngine:
    """Advance many concurrent sDTW alignments in lockstep.

    Parameters
    ----------
    reference:
        The reference squiggle values on the kernel's scale — quantized
        integers for a quantized config, normalized floats otherwise
        (``ReferenceSquiggle.values(quantized=config.quantize)``).
    config:
        Kernel configuration; must use the resumable no-reference-deletion
        recurrence (the hardware recurrences).
    initial_capacity:
        Lanes preallocated up front; storage doubles on demand.
    """

    def __init__(
        self,
        reference: np.ndarray,
        config: Optional[SDTWConfig] = None,
        initial_capacity: int = 8,
    ) -> None:
        self.config = config if config is not None else SDTWConfig()
        if self.config.allow_reference_deletions:
            raise ValueError(
                "BatchSDTWEngine requires allow_reference_deletions=False "
                "(only the hardware recurrences are resumable)"
            )
        if initial_capacity <= 0:
            raise ValueError("initial_capacity must be positive")
        dtype = np.int64 if self.config.quantize else np.float64
        self.reference_values = np.asarray(reference, dtype=dtype)
        if self.reference_values.ndim != 1 or self.reference_values.size == 0:
            raise ValueError("reference must be a non-empty 1-D array")
        self._state = BatchSDTWState.initial(
            initial_capacity, self.reference_values.size, self.config
        )
        self._lane_of: Dict[Hashable, int] = {}
        self._free: List[int] = list(range(initial_capacity - 1, -1, -1))
        self.rounds: List[BatchRound] = []

    # -------------------------------------------------------------- lane admin
    @property
    def capacity(self) -> int:
        return self._state.n_lanes

    @property
    def n_active(self) -> int:
        return len(self._lane_of)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._lane_of

    def active_keys(self) -> Tuple[Hashable, ...]:
        return tuple(self._lane_of)

    def _grow(self) -> None:
        old = self._state
        capacity = old.n_lanes * 2
        state = BatchSDTWState.initial(capacity, self.reference_values.size, self.config)
        state.rows[: old.n_lanes] = old.rows
        state.runs[: old.n_lanes] = old.runs
        state.samples_processed[: old.n_lanes] = old.samples_processed
        self._state = state
        self._free.extend(range(capacity - 1, old.n_lanes - 1, -1))

    def admit(self, key: Hashable) -> int:
        """Assign ``key`` a fresh lane; returns the lane index."""
        if key in self._lane_of:
            raise ValueError(f"read {key!r} already occupies a lane")
        if not self._free:
            self._grow()
        lane = self._free.pop()
        self._state.rows[lane] = 0
        self._state.runs[lane] = 1
        self._state.samples_processed[lane] = 0
        self._lane_of[key] = lane
        return lane

    def retire(self, key: Hashable) -> None:
        """Release ``key``'s lane (no-op for unknown keys)."""
        lane = self._lane_of.pop(key, None)
        if lane is not None:
            self._free.append(lane)

    def samples_processed(self, key: Hashable) -> int:
        """Query samples consumed so far by ``key``'s alignment."""
        return int(self._state.samples_processed[self._lane_of[key]])

    def snapshot(self, key: Hashable) -> LaneSnapshot:
        """Current cost/end-position of one active lane."""
        lane = self._lane_of[key]
        return LaneSnapshot(
            key=key,
            cost=float(self._state.rows[lane].min()),
            end_position=int(np.argmin(self._state.rows[lane])),
            samples_processed=int(self._state.samples_processed[lane]),
        )

    def state_of(self, key: Hashable) -> SDTWState:
        """Scalar :class:`SDTWState` view of one lane (tests / interop)."""
        return self._state.lane(self._lane_of[key])

    # ------------------------------------------------------------------- step
    def step(
        self, items: Sequence[Tuple[Hashable, np.ndarray]]
    ) -> Dict[Hashable, LaneSnapshot]:
        """Advance every listed alignment with one batched wavefront.

        ``items`` pairs each read key with its new (kernel-scale) query
        samples for this round; lengths may be ragged. Unknown keys are
        admitted automatically. Returns the post-step snapshot per key.
        """
        keys = [key for key, _ in items]
        if len(set(keys)) != len(keys):
            raise ValueError("duplicate read keys in one batch round")
        for key in keys:
            if key not in self._lane_of:
                self.admit(key)
        lanes = np.fromiter(
            (self._lane_of[key] for key in keys), dtype=np.intp, count=len(keys)
        )
        queries = [np.asarray(query) for _, query in items]

        n_samples = int(sum(query.size for query in queries))
        self.rounds.append(
            BatchRound(index=len(self.rounds), n_lanes=len(keys), n_samples=n_samples)
        )
        if not keys:
            return {}

        gathered = BatchSDTWState(
            rows=self._state.rows[lanes],
            runs=self._state.runs[lanes],
            samples_processed=self._state.samples_processed[lanes],
        )
        # track_runs=False: the engine never reads raw dwell counters, and the
        # capped counters the fast path keeps are lossless for resumption.
        advanced = sdtw_resume_batch(
            queries, self.reference_values, self.config, state=gathered, track_runs=False
        )
        self._state.rows[lanes] = advanced.rows
        self._state.runs[lanes] = advanced.runs
        self._state.samples_processed[lanes] = advanced.samples_processed

        costs = advanced.costs
        ends = advanced.end_positions
        return {
            key: LaneSnapshot(
                key=key,
                cost=float(costs[index]),
                end_position=int(ends[index]),
                samples_processed=int(advanced.samples_processed[index]),
            )
            for index, key in enumerate(keys)
        }

    # -------------------------------------------------------------- occupancy
    @property
    def occupancy_trace(self) -> List[int]:
        """Per-round active-lane counts — the multi-tile dispatch request trace."""
        return [entry.n_lanes for entry in self.rounds]

    @property
    def peak_occupancy(self) -> int:
        return max(self.occupancy_trace, default=0)
