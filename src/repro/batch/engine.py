"""The batched sDTW execution engine: lane management over a pluggable backend.

:class:`BatchSDTWEngine` is the *lane manager* behind one reference squiggle:
reads are *admitted* to a free lane when their first chunk arrives, every
polling round advances all lanes that received signal with one wavefront, and
decided reads are *retired* so their lane is recycled. Lane storage grows by
doubling, so the engine serves any number of concurrent channels.

Where the lane-stacked DP state physically lives — and how the wavefront
executes — is delegated to an :class:`~repro.batch.backends.ExecutionBackend`:
``"numpy"`` (default) keeps one in-process :class:`BatchSDTWState` and runs
:func:`~repro.core.sdtw.sdtw_resume_batch` directly; ``"sharded"`` stripes
lanes across a persistent pool of worker processes so genome-scale references
use every core's memory bandwidth. Backends are bit-identical per lane, so
admission, retirement, decisions and the occupancy trace never depend on the
backend choice.

The engine also records a :class:`BatchRound` per busy ``step`` call — how
many lanes advanced and how many query samples they consumed, stamped with
the poll index so idle polls (rounds where no lane received signal) leave a
gap instead of a zero-lane entry that would deflate occupancy statistics.
That occupancy trace is exactly the request stream the accelerator's
multi-tile dispatch model wants:
:meth:`repro.hardware.scheduler.TileScheduler.simulate_batch_trace` replays
the dense trace and
:meth:`~repro.hardware.scheduler.TileScheduler.simulate_engine_rounds` the
sparse round records.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Hashable, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.batch.backends import ExecutionBackend, create_backend
from repro.core.config import SDTWConfig
from repro.core.panel import TargetPanel
from repro.core.reference import ReferenceSquiggle
from repro.core.sdtw import SDTWState, lb_envelopes, lb_keogh_bounds, lb_kim_bound
from repro.obs.trace import NULL_TRACER, Tracer

__all__ = ["BatchRound", "BatchSDTWEngine", "LaneSnapshot"]


@dataclass(frozen=True)
class BatchRound:
    """Occupancy record of one busy engine step.

    ``index`` is the poll the round happened on (idle polls are counted but
    not recorded, so indices may have gaps), ``n_lanes`` how many lanes the
    wavefront advanced and ``n_samples`` how many query samples they consumed.
    """

    index: int
    n_lanes: int
    n_samples: int


@dataclass(frozen=True)
class LaneSnapshot:
    """One lane's alignment progress after a step.

    ``cost``/``end_position`` describe the best-matching panel target
    (``target`` names it; ties go to the first target in panel order, the
    same tie-breaking ``np.argmin`` applies within a row). ``target_costs``
    and ``target_ends`` carry the full per-target breakdown, ordered like the
    panel — for a single-reference engine they are 1-tuples and ``cost`` is
    exactly the pre-panel behaviour.
    """

    key: Hashable
    cost: float
    end_position: int
    samples_processed: int
    target: Optional[str] = None
    target_costs: Tuple[float, ...] = ()
    target_ends: Tuple[int, ...] = ()

    @property
    def per_sample_cost(self) -> float:
        return self.cost / max(self.samples_processed, 1)


class BatchSDTWEngine:
    """Advance many concurrent sDTW alignments in lockstep.

    Parameters
    ----------
    reference:
        What to align against: a :class:`~repro.core.panel.TargetPanel`
        (N named targets advanced in one wavefront, per-target costs
        reduced every round), a :class:`~repro.core.reference.ReferenceSquiggle`
        (coerced to a 1-entry panel), or raw reference values on the
        kernel's scale — quantized integers for a quantized config,
        normalized floats otherwise
        (``ReferenceSquiggle.values(quantized=config.quantize)``).
    config:
        Kernel configuration; must use the resumable no-reference-deletion
        recurrence (the hardware recurrences).
    initial_capacity:
        Lanes preallocated up front; storage doubles on demand.
    backend:
        Execution backend: a registered name (``"numpy"``, ``"sharded"``; see
        :func:`repro.batch.backends.available_backends`) or a prebuilt
        :class:`~repro.batch.backends.ExecutionBackend` instance. The engine
        owns backends it creates (``close`` shuts them down) but only borrows
        prebuilt ones.
    backend_options:
        Extra keyword arguments for the backend factory (e.g.
        ``{"workers": 4}`` for the sharded backend).
    tracer:
        Observability hook (:class:`repro.obs.Tracer`). Defaults to the
        shared disabled tracer, making every span a single ``if``; an
        enabled tracer records ``engine.step``/``engine.admit``/
        ``engine.grow`` spans and is handed to the backend so advance
        phases (scatter, wavefront, reduce, gather — and worker-side
        spans for the multi-process backends) land on the same timeline.
        Tracing never changes what the engine computes.
    prune:
        Enable the kernel's pruning layer (early abandoning +
        active-column intervals). Off by default — the brute-force
        advance is preserved bit for bit. Pruning engages once
        :attr:`prune_bound` is set (the decision bound, e.g. the eject
        threshold): costs at or below ``prune_bound + prune_margin``
        stay bit-identical to brute force, so decisions against the
        bound never change; costs above it are approximate.
    prune_margin:
        Extra slack added to :attr:`prune_bound` before deriving kill
        bounds. ``0.0`` prunes most aggressively while keeping decisions
        exact; a positive margin additionally keeps every reported cost
        within ``margin`` of the bound bit-exact (useful when callers
        inspect near-threshold costs, at the price of fewer pruned
        cells).
    prune_lifetime_samples:
        Upper bound on the total query samples any lane will ever
        consume (e.g. the classifier's decision prefix). The match bonus
        lets future samples *lower* a cost, so with a bonus configured
        the kill bounds must budget the maximum remaining credit —
        required when ``prune`` is on and the config uses a bonus.
        Feeding a lane beyond this bound voids the exactness guarantee.
    lb_cascade:
        Enable the lower-bound lane gate (requires ``prune``). Before
        dispatching a round, each lane's cheapest admissible cost is
        lower-bounded by a cascade of cheap bounds (LB_Kim-style
        first/last-sample bound against the reference value extrema,
        then an LB_Keogh-style per-block envelope bound); a lane whose
        bound provably exceeds its kill bound skips the wavefront
        advance entirely that round and is marked stale-dead — it never
        crosses a worker pipe again. Bounds are conservative, so the
        same exactness contract as ``prune`` holds: decisions and every
        cost at or below ``prune_bound + prune_margin`` stay
        bit-identical to brute force.
    lb_level:
        Deepest cascade rung to evaluate: ``1`` stops at the O(1)
        LB_Kim-style bound, ``2`` (default) additionally runs the
        O(chunk) per-block envelope bound on lanes the first rung could
        not kill.
    """

    def __init__(
        self,
        reference: np.ndarray,
        config: Optional[SDTWConfig] = None,
        initial_capacity: int = 8,
        backend: Union[str, ExecutionBackend] = "numpy",
        backend_options: Optional[Mapping[str, Any]] = None,
        tracer: Tracer = NULL_TRACER,
        prune: bool = False,
        prune_margin: float = 0.0,
        prune_lifetime_samples: Optional[int] = None,
        lb_cascade: bool = False,
        lb_level: int = 2,
    ) -> None:
        self.tracer = tracer
        self.config = config if config is not None else SDTWConfig()
        if self.config.allow_reference_deletions:
            raise ValueError(
                "BatchSDTWEngine requires allow_reference_deletions=False "
                "(only the hardware recurrences are resumable)"
            )
        if initial_capacity <= 0:
            raise ValueError("initial_capacity must be positive")
        if prune_margin < 0:
            raise ValueError("prune_margin must be non-negative")
        if prune_lifetime_samples is not None and prune_lifetime_samples <= 0:
            raise ValueError("prune_lifetime_samples must be positive")
        if prune and self.config.uses_bonus and prune_lifetime_samples is None:
            raise ValueError(
                "prune requires prune_lifetime_samples when the config uses a "
                "match bonus: the kill bounds must budget the maximum bonus "
                "credit the remaining samples could still earn"
            )
        if lb_level not in (1, 2):
            raise ValueError(
                f"lb_level must be 1 (LB_Kim) or 2 (LB_Kim + LB_Keogh), got {lb_level}"
            )
        if lb_cascade and not prune:
            raise ValueError(
                "lb_cascade requires prune=True: the lane gate compares lower "
                "bounds against the pruning layer's kill bounds"
            )
        self.prune = bool(prune)
        self.prune_margin = float(prune_margin)
        self.lb_cascade = bool(lb_cascade)
        self.lb_level = int(lb_level)
        # Lane-rounds and nominal DP cells the gate skipped before dispatch.
        self.lanes_lb_skipped = 0
        self.cells_lb_skipped = 0
        self.prune_lifetime_samples = (
            None if prune_lifetime_samples is None else int(prune_lifetime_samples)
        )
        # The decision bound pruning protects (costs at or below it stay
        # exact). None = prune even if enabled is deferred until a caller —
        # typically the classifier, once its threshold is calibrated — sets
        # it; may be updated between rounds (the per-lane kill-bound envelope
        # keeps dead cells dead regardless).
        self.prune_bound: Optional[float] = None
        dtype = np.int64 if self.config.quantize else np.float64
        if isinstance(reference, ReferenceSquiggle):
            reference = TargetPanel.single(reference)
        if isinstance(reference, TargetPanel):
            self.panel: Optional[TargetPanel] = reference
            self.reference_values = np.asarray(
                reference.values(quantized=self.config.quantize), dtype=dtype
            )
            self.target_names: Tuple[str, ...] = reference.names
            self._block_starts = reference.offsets
        else:
            self.panel = None
            self.reference_values = np.asarray(reference, dtype=dtype)
            self.target_names = ("target",)
            self._block_starts = None
        if self.reference_values.ndim != 1 or self.reference_values.size == 0:
            raise ValueError("reference must be a non-empty 1-D array")
        n_targets = len(self.target_names)
        if self.lb_cascade:
            if self.panel is not None:
                self._lb_lows, self._lb_highs = self.panel.lb_envelopes(
                    self.config.quantize
                )
            else:
                self._lb_lows, self._lb_highs = lb_envelopes(
                    self.reference_values, self._block_starts
                )
            self._lb_low = float(self._lb_lows.min())
            self._lb_high = float(self._lb_highs.max())
        if isinstance(backend, str):
            options = dict(backend_options or {})
            if self._block_starts is not None:
                options.setdefault("block_starts", self._block_starts)
            self._backend = create_backend(
                backend,
                self.reference_values,
                self.config,
                initial_capacity,
                **options,
            )
            self._owns_backend = True
        else:
            if backend_options:
                raise ValueError("backend_options only apply when backend is a name")
            if backend.reference_length != self.reference_values.size:
                raise ValueError(
                    f"backend holds a {backend.reference_length}-sample reference "
                    f"but the engine was given {self.reference_values.size} samples"
                )
            if getattr(backend, "n_blocks", 1) != n_targets:
                raise ValueError(
                    f"backend reduces {getattr(backend, 'n_blocks', 1)} panel blocks "
                    f"but the engine serves {n_targets} targets"
                )
            self._backend = backend
            self._owns_backend = False
        # Every built-in backend exposes a `tracer` attribute; user-registered
        # backends without one simply run untraced at the advance level.
        if hasattr(self._backend, "tracer"):
            self._backend.tracer = tracer
        capacity = self._backend.capacity
        self._lane_of: Dict[Hashable, int] = {}
        self._free: List[int] = list(range(capacity - 1, -1, -1))
        # Decision-relevant scalars cached lane-manager-side so snapshots and
        # progress queries never round-trip to the backend: `advance` returns
        # them every round and `reset` re-zeroes them. One column per panel
        # target; the best-target view is reduced on demand.
        self._costs = np.zeros((capacity, n_targets), dtype=np.float64)
        self._ends = np.zeros((capacity, n_targets), dtype=np.intp)
        self._samples = np.zeros(capacity, dtype=np.int64)
        # Per-lane kill-bound envelope: the minimum bound ever sent for the
        # lane. Cells are frozen by comparing against the bound of *their*
        # round, so later rounds must never relax it (a relaxed bound could
        # resurrect a frozen cell whose value missed sample additions).
        self._kill_envelope = np.full(capacity, np.inf, dtype=np.float64)
        self.rounds: List[BatchRound] = []
        self._n_polls = 0

    # -------------------------------------------------------------- lane admin
    @property
    def backend(self) -> ExecutionBackend:
        return self._backend

    @property
    def backend_name(self) -> str:
        return self._backend.backend_name

    @property
    def capacity(self) -> int:
        return self._backend.capacity

    @property
    def n_targets(self) -> int:
        """Panel targets this engine classifies against (1 for a plain reference)."""
        return len(self.target_names)

    @property
    def n_active(self) -> int:
        return len(self._lane_of)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._lane_of

    def active_keys(self) -> Tuple[Hashable, ...]:
        return tuple(self._lane_of)

    def _grow(self) -> None:
        old_capacity = self._backend.capacity
        with self.tracer.span("engine.grow", old_capacity=old_capacity):
            self._backend.allocate(old_capacity * 2)
        capacity = self._backend.capacity
        self._free.extend(range(capacity - 1, old_capacity - 1, -1))
        grown = np.zeros((capacity, self.n_targets), dtype=np.float64)
        grown[:old_capacity] = self._costs
        self._costs = grown
        grown_ends = np.zeros((capacity, self.n_targets), dtype=np.intp)
        grown_ends[:old_capacity] = self._ends
        self._ends = grown_ends
        grown_samples = np.zeros(capacity, dtype=np.int64)
        grown_samples[:old_capacity] = self._samples
        self._samples = grown_samples
        grown_envelope = np.full(capacity, np.inf, dtype=np.float64)
        grown_envelope[:old_capacity] = self._kill_envelope
        self._kill_envelope = grown_envelope

    def admit(self, key: Hashable) -> int:
        """Assign ``key`` a fresh lane; returns the lane index."""
        if key in self._lane_of:
            raise ValueError(f"read {key!r} already occupies a lane")
        with self.tracer.span("engine.admit"):
            if not self._free:
                self._grow()
            lane = self._free.pop()
            self._backend.reset(np.array([lane], dtype=np.intp))
            self._costs[lane] = 0.0
            self._ends[lane] = 0
            self._samples[lane] = 0
            self._kill_envelope[lane] = np.inf
            self._lane_of[key] = lane
        return lane

    def retire(self, key: Hashable) -> None:
        """Release ``key``'s lane (no-op for unknown keys)."""
        lane = self._lane_of.pop(key, None)
        if lane is not None:
            self._free.append(lane)
            self.tracer.instant("engine.retire", lane=lane)

    def samples_processed(self, key: Hashable) -> int:
        """Query samples consumed so far by ``key``'s alignment."""
        return int(self._samples[self._lane_of[key]])

    def _lane_snapshot(self, key: Hashable, lane: int) -> LaneSnapshot:
        lane_costs = self._costs[lane]
        best = int(np.argmin(lane_costs))  # ties: first target in panel order
        return LaneSnapshot(
            key=key,
            cost=float(lane_costs[best]),
            end_position=int(self._ends[lane, best]),
            samples_processed=int(self._samples[lane]),
            target=self.target_names[best],
            target_costs=tuple(float(cost) for cost in lane_costs),
            target_ends=tuple(int(end) for end in self._ends[lane]),
        )

    def snapshot(self, key: Hashable) -> LaneSnapshot:
        """Current cost/end-position of one active lane (best panel target)."""
        return self._lane_snapshot(key, self._lane_of[key])

    def state_of(self, key: Hashable) -> SDTWState:
        """Scalar :class:`SDTWState` view of one lane (tests / interop)."""
        lane = self._lane_of[key]
        return self._backend.gather(np.array([lane], dtype=np.intp)).lane(0)

    # ---------------------------------------------------------------- pruning
    def _prune_bounds(
        self, lanes: np.ndarray, lengths: np.ndarray
    ) -> Optional[np.ndarray]:
        """Per-lane kill bounds for this round, or ``None`` when not pruning.

        A cell can be frozen only if no alignment continuing through it can
        ever end at or below the decision bound ``prune_bound + prune_margin``.
        Over ``r`` remaining query samples a path earns at most
        ``bonus * (r + cap)`` of match-bonus credit (each diagonal harvests at
        most ``cap``; ``r`` steps fit at most ``r`` diagonals plus one
        pre-built run), so the kill bound is the decision bound plus that
        credit, with ``r`` the lane's remaining lifetime (at least this
        round's chunk). The per-lane envelope keeps bounds monotonically
        non-increasing across rounds — dead cells stay dead even if the
        caller moves :attr:`prune_bound`.
        """
        if not self.prune or self.prune_bound is None:
            return None
        base = float(self.prune_bound) + self.prune_margin
        bonus = float(self.config.match_bonus)
        if bonus and self.config.uses_bonus:
            remaining = np.maximum(
                self.prune_lifetime_samples - self._samples[lanes], lengths
            ).astype(np.float64)
            kill = base + bonus * (remaining + float(self.config.match_bonus_cap))
        else:
            kill = np.full(lanes.size, base, dtype=np.float64)
        kill = np.minimum(kill, self._kill_envelope[lanes])
        self._kill_envelope[lanes] = kill
        return kill

    def _lb_gate(
        self,
        lanes: np.ndarray,
        queries: Sequence[np.ndarray],
        lengths: np.ndarray,
        bounds: Optional[np.ndarray],
    ) -> np.ndarray:
        """Lower-bound lane gate: which lanes must actually be dispatched.

        Runs the cascade per lane against its (min-clamped) kill bound: first
        the O(1) LB_Kim-style bound on top of the lane's cached row minimum,
        then — for survivors, at :attr:`lb_level` 2 — the O(chunk) per-block
        envelope bound on top of the cached per-target minima. A killed lane's
        cached costs are clamped up to the violated bound (they provably
        exceed the kill bound forever, so any reported value above it is
        faithful) and its kill envelope drops to ``-inf``: stale-dead lanes
        are skipped on sight every later round. Admissibility: every query
        sample adds at least its envelope gap, block boundaries confine paths
        to one block, and the kill bound already credits the maximum match
        bonus the lane's remaining lifetime could harvest.
        """
        envelope = self._kill_envelope[lanes]
        # Zero-length entries stay dispatched: advancing nothing is free and
        # counting them as skipped lane-rounds would inflate the gate stats.
        keep = ~(np.isneginf(envelope) & (lengths > 0))
        if bounds is not None:
            lane_costs = self._costs[lanes]
            mu = lane_costs.min(axis=1)
            for index in np.flatnonzero(keep & (lengths > 0)):
                bound = float(bounds[index])
                kim = mu[index] + lb_kim_bound(
                    queries[index], self._lb_low, self._lb_high, self.config
                )
                if kim > bound:
                    keep[index] = False
                    lane = lanes[index]
                    np.maximum(self._costs[lane], kim, out=self._costs[lane])
                    continue
                if self.lb_level >= 2:
                    per_block = lane_costs[index] + lb_keogh_bounds(
                        queries[index], self._lb_lows, self._lb_highs, self.config
                    )
                    if float(per_block.min()) > bound:
                        keep[index] = False
                        lane = lanes[index]
                        np.maximum(
                            self._costs[lane], per_block, out=self._costs[lane]
                        )
        skipped = np.flatnonzero(~keep)
        if skipped.size:
            self._kill_envelope[lanes[skipped]] = -np.inf
            self.lanes_lb_skipped += int(skipped.size)
            self.cells_lb_skipped += int(lengths[skipped].sum()) * int(
                self.reference_values.size
            )
        return keep

    @property
    def cells_advanced(self) -> int:
        """DP cells the backend actually swept (all rounds so far)."""
        stats = getattr(self._backend, "stats", None)
        return 0 if stats is None else int(stats.cells_advanced)

    @property
    def cells_pruned(self) -> int:
        """DP cells the pruning layer skipped (all rounds so far)."""
        stats = getattr(self._backend, "stats", None)
        return 0 if stats is None else int(stats.cells_pruned)

    # ------------------------------------------------------------------- step
    def step(
        self, items: Sequence[Tuple[Hashable, np.ndarray]]
    ) -> Dict[Hashable, LaneSnapshot]:
        """Advance every listed alignment with one batched wavefront.

        ``items`` pairs each read key with its new (kernel-scale) query
        samples for this round; lengths may be ragged. Unknown keys are
        admitted automatically. Returns the post-step snapshot per key.

        Every call counts as one poll; only polls that actually advance
        lanes append a :class:`BatchRound` (idle polls would otherwise
        deflate the occupancy statistics the dispatch models consume).
        """
        keys = [key for key, _ in items]
        if len(set(keys)) != len(keys):
            raise ValueError("duplicate read keys in one batch round")
        poll = self._n_polls
        self._n_polls += 1
        if not keys:
            return {}
        with self.tracer.span("engine.step", poll=poll, n_lanes=len(keys)):
            for key in keys:
                if key not in self._lane_of:
                    self.admit(key)
            lanes = np.fromiter(
                (self._lane_of[key] for key in keys), dtype=np.intp, count=len(keys)
            )
            queries = [np.asarray(query) for _, query in items]
            lengths = np.fromiter(
                (query.size for query in queries), dtype=np.int64, count=len(queries)
            )

            self.rounds.append(
                BatchRound(index=poll, n_lanes=len(keys), n_samples=int(lengths.sum()))
            )

            bounds = self._prune_bounds(lanes, lengths)
            if self.lb_cascade:
                lb_before = (self.lanes_lb_skipped, self.cells_lb_skipped)
                keep = self._lb_gate(lanes, queries, lengths, bounds)
                if self.tracer.enabled:
                    with self.tracer.span(
                        "backend.lb",
                        lanes_skipped=self.lanes_lb_skipped - lb_before[0],
                        cells_skipped=self.cells_lb_skipped - lb_before[1],
                        level=self.lb_level,
                    ):
                        pass
                if not keep.all():
                    live = np.flatnonzero(keep)
                    live_lanes = lanes[live]
                    live_queries = [queries[int(index)] for index in live]
                    live_bounds = None if bounds is None else bounds[live]
                else:
                    live_lanes, live_queries, live_bounds = lanes, queries, bounds
            else:
                live_lanes, live_queries, live_bounds = lanes, queries, bounds
            if live_lanes.size:
                if live_bounds is None:
                    # Positional call keeps user-registered backends that
                    # predate the prune_bounds keyword working for unpruned
                    # runs.
                    costs, ends = self._backend.advance(live_lanes, live_queries)
                else:
                    stats = getattr(self._backend, "stats", None)
                    before = (
                        (stats.cells_advanced, stats.cells_pruned)
                        if stats is not None
                        else (0, 0)
                    )
                    costs, ends = self._backend.advance(
                        live_lanes, live_queries, prune_bounds=live_bounds
                    )
                    if self.tracer.enabled and stats is not None:
                        with self.tracer.span(
                            "backend.prune",
                            cells_advanced=stats.cells_advanced - before[0],
                            cells_pruned=stats.cells_pruned - before[1],
                        ):
                            pass
                self._costs[live_lanes] = costs
                self._ends[live_lanes] = ends
            # Skipped lanes still consume their samples logically: decision
            # timing (remaining-lifetime accounting, prefix trimming) must not
            # depend on whether the gate fired. Their backend-side state stays
            # frozen at the kill round, consistent with frozen-column pruning.
            self._samples[lanes] += lengths

            return {
                key: self._lane_snapshot(key, int(lanes[index]))
                for index, key in enumerate(keys)
            }

    # -------------------------------------------------------------- lifecycle
    def close(self) -> None:
        """Shut down a backend the engine created (borrowed backends survive)."""
        if self._owns_backend:
            self._backend.close()

    def __enter__(self) -> "BatchSDTWEngine":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -------------------------------------------------------------- occupancy
    @property
    def n_polls(self) -> int:
        """Total ``step`` calls, idle polls included."""
        return self._n_polls

    @property
    def occupancy_trace(self) -> List[int]:
        """Per-poll active-lane counts — the multi-tile dispatch request trace.

        Dense over every poll (idle polls contribute a zero), so index ``r``
        maps to time ``r * round_duration`` when the trace is replayed.
        """
        trace = [0] * self._n_polls
        for entry in self.rounds:
            trace[entry.index] = entry.n_lanes
        return trace

    @property
    def peak_occupancy(self) -> int:
        return max((entry.n_lanes for entry in self.rounds), default=0)

    @property
    def mean_occupancy(self) -> float:
        """Mean lanes per *busy* round (idle polls excluded)."""
        if not self.rounds:
            return 0.0
        return float(np.mean([entry.n_lanes for entry in self.rounds]))
