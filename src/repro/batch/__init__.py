"""Batched sDTW execution: one vectorized wavefront across all channels.

The paper's accelerator keeps up with every flowcell channel because many
alignments advance in lockstep; this package is the software analogue. Where
the scalar hot path runs one :func:`~repro.core.sdtw.sdtw_resume` per read
per chunk inside a Python loop, the batch subsystem stacks the resumable
no-deletion recurrence into 2-D state (``channels × reference``) and advances
every active alignment with one set of NumPy matrix operations per chunk
round. The subsystem is split into three layers:

* :mod:`repro.batch.backends` — the pluggable **execution backends** behind a
  string-keyed registry (:func:`~repro.batch.backends.available_backends`):
  :class:`NumpyBackend` advances the lane-stacked state in-process (with
  optional cache-sized column tiling), :class:`ShardedProcessBackend` stripes
  *lanes* across a persistent pool of worker processes with shared-memory
  state blocks, :class:`ColumnShardedBackend` stripes *reference columns*
  across the pool so even a single-channel genome-scale workload uses every
  core, and :class:`GpuArrayBackend` keeps the whole state in device memory
  behind an :class:`~repro.core.array_module.ArrayModule` (CuPy/Torch).
  All backends are panel-aware: a multi-target
  :class:`~repro.core.panel.TargetPanel` advances in the same wavefront and
  reduces per target;
* :class:`BatchSDTWEngine` — the backend-agnostic **lane manager**: admission
  and retirement over recycled lanes, capacity growth, ragged per-round chunk
  lengths, and the per-round occupancy trace the ASIC multi-tile dispatch
  model replays
  (:meth:`~repro.hardware.scheduler.TileScheduler.simulate_batch_trace`);
* :class:`BatchSquiggleClassifier` — the streaming Read Until classifier
  built on the engine, advertising the ``on_chunk_batch`` fast path
  :class:`~repro.pipeline.read_until.ReadUntilPipeline` drives whole polling
  rounds through (registered as ``"batch_squigglefilter"``).

Per-lane costs are bit-identical to the per-read scalar kernels — and across
backends — so batching and sharding are purely execution-engine changes.
"""

from repro.batch.backends import (
    ColumnShardedBackend,
    ExecutionBackend,
    GpuArrayBackend,
    NumpyBackend,
    ShardedProcessBackend,
    available_backends,
    create_backend,
    register_backend,
)
from repro.batch.engine import BatchRound, BatchSDTWEngine, LaneSnapshot

__all__ = [
    "BatchRound",
    "BatchSDTWEngine",
    "BatchSquiggleClassifier",
    "ColumnShardedBackend",
    "ExecutionBackend",
    "GpuArrayBackend",
    "LaneSnapshot",
    "NumpyBackend",
    "ShardedProcessBackend",
    "available_backends",
    "create_backend",
    "register_backend",
]


def __getattr__(name: str):
    # BatchSquiggleClassifier pulls in repro.pipeline.api (which itself imports
    # repro.core.filter -> repro.batch.engine), so it is loaded on demand to
    # keep the package importable from the core layer.
    if name == "BatchSquiggleClassifier":
        from repro.batch.classifier import BatchSquiggleClassifier

        return BatchSquiggleClassifier
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
