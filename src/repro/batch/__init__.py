"""Batched sDTW execution: one vectorized wavefront across all channels.

The paper's accelerator keeps up with every flowcell channel because many
alignments advance in lockstep; this package is the software analogue. Where
the scalar hot path runs one :func:`~repro.core.sdtw.sdtw_resume` per read
per chunk inside a Python loop, the batch subsystem stacks the resumable
no-deletion recurrence into 2-D state (``channels × reference``) and advances
every active alignment with one set of NumPy matrix operations per chunk
round:

* :class:`BatchSDTWEngine` — lane admission/retirement over the stacked
  state, ragged per-round chunk lengths, and a per-round occupancy trace the
  ASIC multi-tile dispatch model replays
  (:meth:`~repro.hardware.scheduler.TileScheduler.simulate_batch_trace`);
* :class:`BatchSquiggleClassifier` — the streaming Read Until classifier
  built on the engine, advertising the ``on_chunk_batch`` fast path
  :class:`~repro.pipeline.read_until.ReadUntilPipeline` drives whole polling
  rounds through (registered as ``"batch_squigglefilter"``).

Per-lane costs are bit-identical to the per-read scalar kernels, so batching
is purely an execution-engine change — the enabling layer for sharding and
GPU/accelerator backends behind the same interface.
"""

from repro.batch.engine import BatchRound, BatchSDTWEngine, LaneSnapshot

__all__ = ["BatchRound", "BatchSDTWEngine", "BatchSquiggleClassifier", "LaneSnapshot"]


def __getattr__(name: str):
    # BatchSquiggleClassifier pulls in repro.pipeline.api (which itself imports
    # repro.core.filter -> repro.batch.engine), so it is loaded on demand to
    # keep the package importable from the core layer.
    if name == "BatchSquiggleClassifier":
        from repro.batch.classifier import BatchSquiggleClassifier

        return BatchSquiggleClassifier
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
