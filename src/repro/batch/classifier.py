"""Streaming Read Until classifier backed by the batched wavefront engine.

:class:`BatchSquiggleClassifier` speaks the
:class:`~repro.pipeline.api.ReadUntilClassifier` protocol and additionally
advertises ``on_chunk_batch`` — the fast path
:class:`~repro.pipeline.read_until.ReadUntilPipeline` uses to classify every
undecided channel's chunk of a polling round with **one** vectorized sDTW
wavefront instead of a per-read Python loop.

Each chunk is normalized on its own (the hardware normalizer operates per
chunk, paper Section 5.3), quantized when the kernel config asks for it, and
appended to the read's resumable lane in the :class:`BatchSDTWEngine`; the
decision fires once the configured prefix has streamed in (or the read ends
first). The scalar ``on_chunk`` path is a batch of one, so batched and
per-read runs make bit-identical decisions.
"""

from __future__ import annotations

import warnings
from typing import TYPE_CHECKING, Any, Dict, List, Mapping, Optional, Sequence, Union

import numpy as np

from repro.batch.backends import ExecutionBackend
from repro.batch.engine import BatchSDTWEngine
from repro.core.config import SDTWConfig
from repro.core.normalization import NormalizationConfig, SignalNormalizer
from repro.core.panel import TargetPanel
from repro.core.reference import ReferenceSquiggle
from repro.core.thresholds import choose_threshold
from repro.obs.trace import NULL_TRACER, Tracer
from repro.pipeline.api import ACCEPT, DEFAULT_HARDWARE_LATENCY_S, EJECT, Action
from repro.sequencer.read_until_api import SignalChunk

if TYPE_CHECKING:  # duck-typed at runtime; avoids a hard runtime dependency
    from repro.runtime.config import RunConfig

__all__ = ["BatchSquiggleClassifier"]

# Sentinel distinguishing "kwarg not passed" from any explicit value, so the
# deprecation shim only fires when the legacy backend kwargs are really used.
_UNSET: Any = object()


class BatchSquiggleClassifier:
    """Single-stage sDTW classifier that advances all channels in lockstep.

    ``reference`` may be one :class:`ReferenceSquiggle` or a multi-target
    :class:`TargetPanel`: with a panel, every chunk round scores all targets
    in the same wavefront and terminal actions carry the per-target argmin
    (``Action.target`` / ``Action.target_costs``). ``run_config`` — a
    :class:`repro.runtime.RunConfig` — selects the execution backend the
    engine advances lanes on (``"numpy"`` in-process, ``"sharded"`` /
    ``"colsharded"`` across a worker-process pool, ``"gpu"`` on a device
    array module — see :mod:`repro.batch.backends`); decisions are
    bit-identical whichever backend runs. The pre-``RunConfig`` ``backend``
    / ``backend_options`` kwargs still work but emit a
    :class:`DeprecationWarning`. Call :meth:`close` (or use the classifier
    as a context manager) to release a multi-process backend's workers —
    or, better, let a :class:`repro.runtime.ReadUntilSession` own the
    lifecycle.
    """

    supports_chunk_batching = True

    def __init__(
        self,
        reference: Union[ReferenceSquiggle, TargetPanel],
        config: Optional[SDTWConfig] = None,
        normalization: Optional[NormalizationConfig] = None,
        threshold: Optional[float] = None,
        prefix_samples: Optional[int] = None,
        name: Optional[str] = None,
        decision_latency_s: Optional[float] = None,
        backend: Union[str, ExecutionBackend] = _UNSET,
        backend_options: Optional[Mapping[str, Any]] = _UNSET,
        run_config: Optional["RunConfig"] = None,
        tracer: Tracer = NULL_TRACER,
    ) -> None:
        if run_config is not None:
            if backend is not _UNSET or backend_options is not _UNSET:
                raise ValueError(
                    "pass either run_config or the legacy backend/backend_options "
                    "kwargs, not both"
                )
            # The config is the declarative description of the run: any field
            # not explicitly overridden by a kwarg comes from it.
            resolved_backend: Union[str, ExecutionBackend] = run_config.backend
            resolved_options: Optional[Mapping[str, Any]] = (
                run_config.resolved_backend_options()
            )
            if config is None:
                config = run_config.hardware
            if threshold is None:
                threshold = run_config.threshold
            if prefix_samples is None:
                prefix_samples = run_config.prefix_samples
        elif backend is _UNSET and backend_options is _UNSET:
            resolved_backend, resolved_options = "numpy", None
        else:
            warnings.warn(
                "BatchSquiggleClassifier(backend=..., backend_options=...) is "
                "deprecated; describe the run with a repro.runtime.RunConfig and "
                "pass run_config= (or drive it through repro.runtime.open_session)",
                DeprecationWarning,
                stacklevel=2,
            )
            resolved_backend = "numpy" if backend is _UNSET else backend
            resolved_options = None if backend_options is _UNSET else backend_options
        prefix_samples = 2000 if prefix_samples is None else prefix_samples
        if prefix_samples <= 0:
            raise ValueError(f"prefix_samples must be positive, got {prefix_samples}")
        self.panel = TargetPanel.coerce(reference)
        self.reference = self.panel.primary
        self.config = config if config is not None else SDTWConfig.hardware()
        self.normalization = (
            normalization if normalization is not None else self.panel.normalization
        )
        self.normalizer = SignalNormalizer(self.normalization)
        self.threshold = threshold
        self.prefix_samples = int(prefix_samples)
        self.run_config = run_config
        self.tracer = tracer
        # Pruning: the classifier knows the two facts the engine's kill
        # bounds need — the decision bound is the eject threshold, and no
        # lane ever consumes more than the decision prefix (on_chunk_batch
        # trims chunks to it). The bound itself is stamped per round so late
        # calibration is picked up.
        prune = bool(run_config.prune) if run_config is not None else False
        prune_margin = float(run_config.prune_margin) if run_config is not None else 0.0
        lb_cascade = bool(run_config.lb_cascade) if run_config is not None else False
        lb_level = int(run_config.lb_level) if run_config is not None else 2
        self.engine = BatchSDTWEngine(
            self.panel,
            self.config,
            backend=resolved_backend,
            backend_options=resolved_options,
            tracer=tracer,
            prune=prune,
            prune_margin=prune_margin,
            prune_lifetime_samples=self.prefix_samples if prune else None,
            lb_cascade=lb_cascade,
            lb_level=lb_level,
        )
        self.name = name if name is not None else f"batch:SquiggleFilter[{self.engine.backend_name}]"
        self.decision_latency_s = (
            float(decision_latency_s)
            if decision_latency_s is not None
            else DEFAULT_HARDWARE_LATENCY_S
        )

    # ------------------------------------------------------------- protocol
    @property
    def backend_name(self) -> str:
        """Which execution backend the engine advances lanes on."""
        return self.engine.backend_name

    def close(self) -> None:
        """Release the execution backend (worker processes, shared memory)."""
        self.engine.close()

    def __enter__(self) -> "BatchSquiggleClassifier":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    @property
    def min_decision_samples(self) -> int:
        return self.prefix_samples

    @property
    def max_decision_samples(self) -> int:
        return self.prefix_samples

    def begin_read(self, read_id: str) -> None:
        if read_id not in self.engine:
            self.engine.admit(read_id)

    def end_read(self, read_id: str) -> None:
        self.engine.retire(read_id)

    def on_chunk(self, chunk: SignalChunk) -> Action:
        """Scalar fallback: a batch round of one channel."""
        return self.on_chunk_batch([chunk])[0]

    def on_chunk_batch(self, chunks: Sequence[SignalChunk]) -> List[Action]:
        """Classify one polling round: a single wavefront across all chunks."""
        if self.threshold is None:
            raise ValueError(
                "no threshold configured; call calibrate() or pass threshold explicitly"
            )
        # The eject threshold is the decision bound the pruning layer
        # protects; stamped every round because calibrate() may run after
        # construction (the engine's kill-bound envelope keeps per-lane
        # bounds monotone even if it moves).
        self.engine.prune_bound = float(self.threshold)
        with self.tracer.span("round.prepare", n_chunks=len(chunks)):
            items = []
            for chunk in chunks:
                if chunk.read_id not in self.engine:
                    self.engine.admit(chunk.read_id)
                consumed = self.engine.samples_processed(chunk.read_id)
                remaining = self.prefix_samples - consumed
                if remaining > 0 and chunk.chunk_length > 0:
                    items.append(
                        (chunk.read_id, self._prepare(chunk.signal_pa[:remaining]))
                    )
        snapshots = self.engine.step(items)

        with self.tracer.span("round.decide"):
            actions: List[Action] = []
            for chunk in chunks:
                if chunk.samples_seen < self.prefix_samples and not chunk.is_last:
                    actions.append(Action.wait())
                    continue
                snapshot = snapshots.get(chunk.read_id)
                if snapshot is None:
                    snapshot = self.engine.snapshot(chunk.read_id)
                accept = snapshot.cost <= self.threshold
                self.end_read(chunk.read_id)
                actions.append(
                    Action(
                        kind=ACCEPT if accept else EJECT,
                        cost=float(snapshot.cost),
                        samples_used=int(snapshot.samples_processed),
                        stage=0,
                        threshold=float(self.threshold),
                        end_position=int(snapshot.end_position),
                        target=snapshot.target,
                        target_costs=snapshot.target_costs,
                    )
                )
            return actions

    # ---------------------------------------------------------- calibration
    def _prepare(self, raw_chunk: np.ndarray) -> np.ndarray:
        normalized = self.normalizer.normalize(np.asarray(raw_chunk, dtype=np.float64))
        if self.config.quantize:
            return self.normalizer.quantize(normalized)
        return normalized

    def costs(
        self,
        raw_signals: Sequence[np.ndarray],
        prefix_samples: Optional[int] = None,
        chunk_samples: Optional[int] = None,
    ) -> List[float]:
        """Chunk-streamed alignment costs for many reads, batched per round.

        Mirrors what the streaming path computes: each read's prefix is cut
        into ``chunk_samples`` pieces, each piece normalized on its own, and
        every round advances all reads with one wavefront. With
        ``chunk_samples >= prefix_samples`` (the pipeline default geometry)
        this equals :meth:`SquiggleFilter.cost` on the same prefix.
        """
        prefix = prefix_samples if prefix_samples is not None else self.prefix_samples
        chunk = chunk_samples if chunk_samples is not None else prefix
        if chunk <= 0:
            raise ValueError("chunk_samples must be positive")
        signals = [np.asarray(signal, dtype=np.float64)[:prefix] for signal in raw_signals]
        if any(signal.size == 0 for signal in signals):
            raise ValueError("cannot classify an empty signal")
        # Calibration always runs in-process: backends are bit-identical per
        # lane, and a one-shot sweep should not spin up a second worker pool.
        with BatchSDTWEngine(self.panel, self.config, backend="numpy") as engine:
            costs: Dict[int, float] = {}
            offset = 0
            while len(costs) < len(signals):
                items = []
                for index, signal in enumerate(signals):
                    if offset < signal.size:
                        items.append((index, self._prepare(signal[offset : offset + chunk])))
                snapshots = engine.step(items)
                offset += chunk
                for index, signal in enumerate(signals):
                    if index not in costs and offset >= signal.size:
                        costs[index] = snapshots[index].cost
        return [costs[index] for index in range(len(signals))]

    def calibrate(
        self,
        target_signals: Sequence[np.ndarray],
        nontarget_signals: Sequence[np.ndarray],
        objective: str = "f1",
        target_recall: float = 0.95,
        prefix_samples: Optional[int] = None,
        chunk_samples: Optional[int] = None,
    ) -> float:
        """Choose and store a threshold from labelled calibration reads."""
        self.threshold = choose_threshold(
            self.costs(target_signals, prefix_samples, chunk_samples),
            self.costs(nontarget_signals, prefix_samples, chunk_samples),
            objective=objective,
            target_recall=target_recall,
        )
        return self.threshold
