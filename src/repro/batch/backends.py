"""Pluggable execution backends for the batched sDTW engine.

:class:`~repro.batch.engine.BatchSDTWEngine` is a *lane manager*: it decides
which read occupies which lane, when lanes are recycled, and what the
per-round occupancy trace looks like. *Where and how* the lane-stacked
:class:`~repro.core.sdtw.BatchSDTWState` actually advances is this module's
job. An :class:`ExecutionBackend` owns the resident DP state and exposes
three data-movement verbs plus lane bookkeeping:

* ``advance(lanes, queries)`` — the per-round hot path: feed each listed lane
  its new (kernel-scale) query samples and return the post-advance cost and
  end position per lane;
* ``gather(lanes)`` / ``scatter(lanes, state)`` — stack lane state out of /
  into the backend (snapshots, tests, interop); cold paths;
* ``allocate`` / ``reset`` — capacity growth and lane recycling.

Two implementations are registered, mirroring how UNCALLED exposes its DTW
variants behind a string-keyed ``METHODS`` mapping:

* :class:`NumpyBackend` (``"numpy"``) — the in-process path: one
  :class:`BatchSDTWState` in this process, advanced by
  :func:`~repro.core.sdtw.sdtw_resume_batch`. Exactly the execution PR 2's
  monolithic engine performed.
* :class:`ShardedProcessBackend` (``"sharded"``) — lanes striped across a
  persistent pool of worker processes, one shard of the stacked state
  resident per worker. Per round only the ragged query chunks travel down
  the pipes and only the per-lane cost/end snapshots travel back; the rows
  themselves never move. Each shard's state lives in a shared-memory block
  (``int32`` rows for the all-integer hardware configurations — half the
  footprint), so gather/scatter/reset are zero-copy parent-side reads and
  writes, with no worker round trip.

Both backends run the same kernel on the same per-lane state, so per-lane
costs, rows and therefore Read Until decisions are bit-identical — backend
selection is purely an execution concern, which is what lets
``BatchSquiggleClassifier(..., backend="sharded")`` scale a full flowcell
across cores without touching decision logic.
"""

from __future__ import annotations

import atexit
import multiprocessing as mp
import os
import traceback
from math import ceil
from multiprocessing import shared_memory
from typing import Any, Callable, Dict, List, Optional, Protocol, Sequence, Tuple

import numpy as np

from repro.core.config import SDTWConfig
from repro.core.sdtw import BatchSDTWState, sdtw_resume_batch

__all__ = [
    "ExecutionBackend",
    "NumpyBackend",
    "ShardedProcessBackend",
    "available_backends",
    "create_backend",
    "register_backend",
]


class ExecutionBackend(Protocol):
    """Where the lane-stacked sDTW state lives and how it advances.

    Implementations own one logical ``(capacity, reference_length)``
    :class:`BatchSDTWState` (however it is physically stored) and must keep
    per-lane results bit-identical to per-read :func:`sdtw_resume` calls —
    the lane manager and every layer above it treat backends as
    interchangeable.
    """

    backend_name: str

    @property
    def capacity(self) -> int:
        """Lanes currently allocated."""
        ...

    @property
    def reference_length(self) -> int: ...

    def allocate(self, min_capacity: int) -> None:
        """Grow storage to at least ``min_capacity`` lanes (never shrinks).

        Existing lane state is preserved; new lanes come up zeroed. The
        backend may round the capacity up (e.g. to a multiple of its shard
        count) — callers re-read :attr:`capacity` afterwards.
        """
        ...

    def reset(self, lanes: np.ndarray) -> None:
        """Return the given lanes to the fresh (no samples consumed) state."""
        ...

    def advance(
        self, lanes: np.ndarray, queries: Sequence[np.ndarray]
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Advance each listed lane with its new query samples (the hot path).

        Returns ``(costs, end_positions)`` aligned with ``lanes``. The
        backend updates its resident rows/runs/samples in place.
        """
        ...

    def gather(self, lanes: np.ndarray) -> BatchSDTWState:
        """Stack the given lanes' state into a fresh :class:`BatchSDTWState`."""
        ...

    def scatter(self, lanes: np.ndarray, state: BatchSDTWState) -> None:
        """Write stacked lane state back into the backend's resident storage."""
        ...

    def close(self) -> None:
        """Release workers/storage. Idempotent; the backend is unusable after."""
        ...


# ------------------------------------------------------------------- registry
BackendFactory = Callable[..., ExecutionBackend]

_BACKENDS: Dict[str, BackendFactory] = {}


def register_backend(name: str) -> Callable[[BackendFactory], BackendFactory]:
    """Register an execution-backend factory under a string key (decorator).

    Factories are called as ``factory(reference, config, capacity,
    **options)`` and must return an object satisfying
    :class:`ExecutionBackend`.
    """

    def wrap(factory: BackendFactory) -> BackendFactory:
        key = name.lower()
        if key in _BACKENDS:
            raise ValueError(f"execution backend {name!r} is already registered")
        _BACKENDS[key] = factory
        return factory

    return wrap


def available_backends() -> Tuple[str, ...]:
    """The registered backend names, sorted."""
    return tuple(sorted(_BACKENDS))


def create_backend(
    name: str,
    reference: np.ndarray,
    config: SDTWConfig,
    capacity: int,
    **options: Any,
) -> ExecutionBackend:
    """Instantiate a registered execution backend by name."""
    try:
        factory = _BACKENDS[name.lower()]
    except KeyError:
        known = ", ".join(available_backends()) or "(none)"
        raise KeyError(f"unknown execution backend {name!r}; registered: {known}") from None
    return factory(reference, config, capacity, **options)


def _state_dtypes(config: SDTWConfig) -> Tuple[np.dtype, np.dtype]:
    """(rows, runs) storage dtypes for a backend's resident state.

    The all-integer hardware data path (quantized, absolute distance,
    whole-number bonus — the preconditions of the kernel's int32 fast path)
    stores ``int32`` rows and runs: every intermediate the kernel produces on
    that path fits comfortably, and the footprint halves. Other
    configurations store the :class:`BatchSDTWState` dtypes directly.
    """
    if (
        config.quantize
        and config.distance == "absolute"
        and float(config.match_bonus).is_integer()
    ):
        return np.dtype(np.int32), np.dtype(np.int32)
    rows = np.dtype(np.int64) if config.quantize else np.dtype(np.float64)
    return rows, np.dtype(np.int64)


# --------------------------------------------------------------- numpy backend
@register_backend("numpy")
class NumpyBackend:
    """In-process execution: one resident :class:`BatchSDTWState`.

    This is PR 2's engine execution extracted verbatim: ``advance`` gathers
    the listed lanes into a contiguous stacked state, runs one
    :func:`sdtw_resume_batch` wavefront, and scatters the advanced rows back.
    """

    backend_name = "numpy"

    def __init__(
        self,
        reference: np.ndarray,
        config: Optional[SDTWConfig] = None,
        capacity: int = 8,
    ) -> None:
        self.config = config if config is not None else SDTWConfig()
        self.reference_values = np.asarray(
            reference, dtype=np.int64 if self.config.quantize else np.float64
        )
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self._state = BatchSDTWState.initial(
            capacity, self.reference_values.size, self.config
        )

    @property
    def capacity(self) -> int:
        return self._state.n_lanes

    @property
    def reference_length(self) -> int:
        return self._state.reference_length

    def allocate(self, min_capacity: int) -> None:
        old = self._state
        if min_capacity <= old.n_lanes:
            return
        state = BatchSDTWState.initial(min_capacity, old.reference_length, self.config)
        state.rows[: old.n_lanes] = old.rows
        state.runs[: old.n_lanes] = old.runs
        state.samples_processed[: old.n_lanes] = old.samples_processed
        self._state = state

    def reset(self, lanes: np.ndarray) -> None:
        self._state.rows[lanes] = 0
        self._state.runs[lanes] = 1
        self._state.samples_processed[lanes] = 0

    def advance(
        self, lanes: np.ndarray, queries: Sequence[np.ndarray]
    ) -> Tuple[np.ndarray, np.ndarray]:
        gathered = BatchSDTWState(
            rows=self._state.rows[lanes],
            runs=self._state.runs[lanes],
            samples_processed=self._state.samples_processed[lanes],
        )
        # track_runs=False: the engine never reads raw dwell counters, and the
        # capped counters the fast path keeps are lossless for resumption.
        advanced = sdtw_resume_batch(
            queries, self.reference_values, self.config, state=gathered, track_runs=False
        )
        self._state.rows[lanes] = advanced.rows
        self._state.runs[lanes] = advanced.runs
        self._state.samples_processed[lanes] = advanced.samples_processed
        return advanced.costs, advanced.end_positions

    def gather(self, lanes: np.ndarray) -> BatchSDTWState:
        return BatchSDTWState(
            rows=self._state.rows[lanes].copy(),
            runs=self._state.runs[lanes].copy(),
            samples_processed=self._state.samples_processed[lanes].copy(),
        )

    def scatter(self, lanes: np.ndarray, state: BatchSDTWState) -> None:
        self._state.rows[lanes] = state.rows
        self._state.runs[lanes] = state.runs
        self._state.samples_processed[lanes] = state.samples_processed

    def close(self) -> None:
        return None


# ------------------------------------------------------------- sharded backend
def _attach_shm(name: str) -> shared_memory.SharedMemory:
    """Attach to the parent's shared block without claiming ownership.

    Workers are children of the creating process, so they share its resource
    tracker: their attach re-adds the same name to the tracker's (set-based)
    cache, which is a no-op, and the parent's ``unlink`` clears it exactly
    once. No per-worker unregistering is needed — or safe.
    """
    return shared_memory.SharedMemory(name=name)


class _ShardViews:
    """Numpy views of one shard's state inside a shared-memory block.

    Layout: ``rows (local_capacity, reference_length)`` then ``runs`` of the
    same shape then ``samples_processed (local_capacity,)`` int64, padded to
    alignment. Parent and worker both construct views over the same block,
    so reset/gather/scatter are plain array operations with no pipe traffic.
    """

    _ALIGN = 16

    def __init__(
        self,
        block: shared_memory.SharedMemory,
        local_capacity: int,
        reference_length: int,
        rows_dtype: np.dtype,
        runs_dtype: np.dtype,
    ) -> None:
        self.block = block
        shape = (local_capacity, reference_length)
        rows_bytes = self._padded(int(rows_dtype.itemsize) * local_capacity * reference_length)
        runs_bytes = self._padded(int(runs_dtype.itemsize) * local_capacity * reference_length)
        self.rows = np.ndarray(shape, dtype=rows_dtype, buffer=block.buf, offset=0)
        self.runs = np.ndarray(shape, dtype=runs_dtype, buffer=block.buf, offset=rows_bytes)
        self.samples = np.ndarray(
            (local_capacity,), dtype=np.int64, buffer=block.buf, offset=rows_bytes + runs_bytes
        )

    @classmethod
    def _padded(cls, nbytes: int) -> int:
        return (nbytes + cls._ALIGN - 1) // cls._ALIGN * cls._ALIGN

    @classmethod
    def nbytes(
        cls,
        local_capacity: int,
        reference_length: int,
        rows_dtype: np.dtype,
        runs_dtype: np.dtype,
    ) -> int:
        cells = local_capacity * reference_length
        return (
            cls._padded(int(rows_dtype.itemsize) * cells)
            + cls._padded(int(runs_dtype.itemsize) * cells)
            + 8 * local_capacity
        )

    def initialize(self, lanes: Optional[np.ndarray] = None) -> None:
        """Fresh-lane state: zero rows/samples, unit runs."""
        target = slice(None) if lanes is None else lanes
        self.rows[target] = 0
        self.runs[target] = 1
        self.samples[target] = 0

    def release(self) -> None:
        """Drop the numpy views (they pin the buffer) and close the block."""
        del self.rows, self.runs, self.samples
        self.block.close()


def _shard_worker(
    conn,
    shm_name: str,
    local_capacity: int,
    reference: np.ndarray,
    config: SDTWConfig,
) -> None:
    """Worker loop: advance the resident shard state on request.

    The shard's rows/runs/samples live in the parent-created shared block;
    this process is the only writer between an ``advance`` request and its
    reply, and the parent only touches the block while no request is in
    flight, so no locking is needed.
    """
    rows_dtype, runs_dtype = _state_dtypes(config)
    views = _ShardViews(
        _attach_shm(shm_name), local_capacity, reference.size, rows_dtype, runs_dtype
    )
    int32_rows = rows_dtype == np.dtype(np.int32)
    try:
        while True:
            message = conn.recv()
            command = message[0]
            try:
                if command == "advance":
                    _, local_lanes, queries = message
                    state = BatchSDTWState(
                        rows=views.rows[local_lanes],
                        runs=views.runs[local_lanes],
                        samples_processed=views.samples[local_lanes],
                    )
                    advanced = sdtw_resume_batch(
                        queries, reference, config, state=state, track_runs=False
                    )
                    if int32_rows and advanced.rows.size:
                        peak = int(np.abs(advanced.rows).max())
                        if peak >= 2**31:
                            raise OverflowError(
                                f"advanced rows reach {peak}, beyond int32 shard storage; "
                                "use the numpy backend for this configuration"
                            )
                    views.rows[local_lanes] = advanced.rows
                    views.runs[local_lanes] = advanced.runs
                    views.samples[local_lanes] = advanced.samples_processed
                    conn.send(("ok", (advanced.costs, advanced.end_positions)))
                elif command == "attach":
                    _, shm_name, local_capacity = message
                    old = views
                    views = _ShardViews(
                        _attach_shm(shm_name),
                        local_capacity,
                        reference.size,
                        rows_dtype,
                        runs_dtype,
                    )
                    old.release()
                    conn.send(("ok", None))
                elif command == "stop":
                    conn.send(("ok", None))
                    return
                else:  # pragma: no cover - protocol violation
                    raise ValueError(f"unknown shard command {command!r}")
            except Exception:
                conn.send(("error", traceback.format_exc()))
    except (EOFError, KeyboardInterrupt):  # pragma: no cover - parent died
        return
    finally:
        try:
            views.release()
        except BufferError:  # pragma: no cover - stray view reference
            pass
        conn.close()


@register_backend("sharded")
class ShardedProcessBackend:
    """Lanes striped across a persistent pool of worker processes.

    Lane ``l`` lives in shard ``l % workers`` at local slot ``l // workers``,
    so consecutive lane admissions spread across shards and every shard's
    occupancy stays within one lane of the others — the static striping keeps
    per-round shard batches balanced without any migration machinery.

    Each worker holds its shard of the stacked state resident in a
    shared-memory block the parent allocates (``int32`` rows on the
    all-integer hardware path). Per engine round the parent sends every busy
    shard its ragged query chunks, the shards run their wavefronts
    concurrently, and only the per-lane cost/end snapshots come back — the
    DP rows never cross a pipe. ``gather``/``scatter``/``reset`` are
    parent-side shared-memory reads and writes.
    """

    backend_name = "sharded"

    def __init__(
        self,
        reference: np.ndarray,
        config: Optional[SDTWConfig] = None,
        capacity: int = 8,
        workers: Optional[int] = None,
    ) -> None:
        self.config = config if config is not None else SDTWConfig()
        self.reference_values = np.asarray(
            reference, dtype=np.int64 if self.config.quantize else np.float64
        )
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if workers is None:
            workers = max(1, min(8, (os.cpu_count() or 2) - 1))
        if workers <= 0:
            raise ValueError("workers must be positive")
        self.n_workers = int(workers)
        self._rows_dtype, self._runs_dtype = _state_dtypes(self.config)
        self._local_capacity = max(1, ceil(capacity / self.n_workers))
        self._closed = False

        # fork shares the parent's pages and starts in milliseconds; fall back
        # to the default (spawn) where fork is unavailable. Workers only need
        # picklable arguments, so both start methods work.
        methods = mp.get_all_start_methods()
        self._ctx = mp.get_context("fork" if "fork" in methods else None)

        self._blocks: List[shared_memory.SharedMemory] = []
        self._views: List[_ShardViews] = []
        self._conns = []
        self._processes = []
        for shard in range(self.n_workers):
            block = self._create_block(self._local_capacity)
            views = _ShardViews(
                block,
                self._local_capacity,
                self.reference_values.size,
                self._rows_dtype,
                self._runs_dtype,
            )
            views.initialize()
            parent_conn, worker_conn = self._ctx.Pipe()
            process = self._ctx.Process(
                target=_shard_worker,
                args=(
                    worker_conn,
                    block.name,
                    self._local_capacity,
                    self.reference_values,
                    self.config,
                ),
                daemon=True,
                name=f"sdtw-shard-{shard}",
            )
            process.start()
            worker_conn.close()
            self._blocks.append(block)
            self._views.append(views)
            self._conns.append(parent_conn)
            self._processes.append(process)
        # Daemon processes die with the interpreter, but the shared segments
        # must be unlinked explicitly or they outlive the run.
        self._finalizer = atexit.register(self.close)

    # ----------------------------------------------------------- bookkeeping
    @property
    def capacity(self) -> int:
        return self._local_capacity * self.n_workers

    @property
    def reference_length(self) -> int:
        return int(self.reference_values.size)

    def _create_block(self, local_capacity: int) -> shared_memory.SharedMemory:
        size = _ShardViews.nbytes(
            local_capacity, self.reference_values.size, self._rows_dtype, self._runs_dtype
        )
        return shared_memory.SharedMemory(create=True, size=size)

    def _shard_of(self, lanes: np.ndarray) -> np.ndarray:
        return np.asarray(lanes, dtype=np.intp) % self.n_workers

    def _local_of(self, lanes: np.ndarray) -> np.ndarray:
        return np.asarray(lanes, dtype=np.intp) // self.n_workers

    def _recv(self, shard: int):
        try:
            status, payload = self._conns[shard].recv()
        except EOFError:
            raise RuntimeError(
                f"sharded backend worker {shard} died unexpectedly"
            ) from None
        if status != "ok":
            raise RuntimeError(f"sharded backend worker {shard} failed:\n{payload}")
        return payload

    def _request(self, shard: int, message) -> Any:
        self._conns[shard].send(message)
        return self._recv(shard)

    # ------------------------------------------------------------- lifecycle
    def allocate(self, min_capacity: int) -> None:
        if self._closed:
            raise RuntimeError("backend is closed")
        if min_capacity <= self.capacity:
            return
        local_capacity = max(self._local_capacity + 1, ceil(min_capacity / self.n_workers))
        for shard in range(self.n_workers):
            block = self._create_block(local_capacity)
            views = _ShardViews(
                block,
                local_capacity,
                self.reference_values.size,
                self._rows_dtype,
                self._runs_dtype,
            )
            views.initialize()
            old = self._views[shard]
            views.rows[: self._local_capacity] = old.rows
            views.runs[: self._local_capacity] = old.runs
            views.samples[: self._local_capacity] = old.samples
            self._request(shard, ("attach", block.name, local_capacity))
            old_block = old.block
            old.release()
            old_block.unlink()
            self._blocks[shard] = block
            self._views[shard] = views
        self._local_capacity = local_capacity

    def reset(self, lanes: np.ndarray) -> None:
        lanes = np.asarray(lanes, dtype=np.intp)
        shards = self._shard_of(lanes)
        local = self._local_of(lanes)
        for shard in np.unique(shards):
            self._views[shard].initialize(local[shards == shard])

    def advance(
        self, lanes: np.ndarray, queries: Sequence[np.ndarray]
    ) -> Tuple[np.ndarray, np.ndarray]:
        if self._closed:
            raise RuntimeError("backend is closed")
        lanes = np.asarray(lanes, dtype=np.intp)
        shards = self._shard_of(lanes)
        local = self._local_of(lanes)
        busy: List[Tuple[int, np.ndarray]] = []
        for shard in np.unique(shards):
            members = np.flatnonzero(shards == shard)
            self._conns[shard].send(
                ("advance", local[members], [queries[i] for i in members])
            )
            busy.append((int(shard), members))
        costs = np.empty(lanes.size, dtype=np.float64 if not self.config.quantize else np.int64)
        ends = np.empty(lanes.size, dtype=np.intp)
        # Every busy shard's reply must be consumed even if an earlier one
        # failed — an unread reply would desync the request/reply protocol
        # and surface as a *stale* result on the next call.
        errors: List[Exception] = []
        for shard, members in busy:
            try:
                shard_costs, shard_ends = self._recv(shard)
            except RuntimeError as error:
                errors.append(error)
                continue
            costs[members] = shard_costs
            ends[members] = shard_ends
        if errors:
            # Shards that succeeded have already applied the round; the
            # failed shards have not. Callers should treat the backend's
            # state as undefined for the lanes of this round.
            raise errors[0]
        return costs, ends

    def gather(self, lanes: np.ndarray) -> BatchSDTWState:
        lanes = np.asarray(lanes, dtype=np.intp)
        shards = self._shard_of(lanes)
        local = self._local_of(lanes)
        rows = np.empty(
            (lanes.size, self.reference_length),
            dtype=np.int64 if self.config.quantize else np.float64,
        )
        runs = np.empty((lanes.size, self.reference_length), dtype=np.int64)
        samples = np.empty(lanes.size, dtype=np.int64)
        for index in range(lanes.size):
            views = self._views[shards[index]]
            rows[index] = views.rows[local[index]]
            runs[index] = views.runs[local[index]]
            samples[index] = views.samples[local[index]]
        return BatchSDTWState(rows=rows, runs=runs, samples_processed=samples)

    def scatter(self, lanes: np.ndarray, state: BatchSDTWState) -> None:
        lanes = np.asarray(lanes, dtype=np.intp)
        shards = self._shard_of(lanes)
        local = self._local_of(lanes)
        for index in range(lanes.size):
            views = self._views[shards[index]]
            views.rows[local[index]] = state.rows[index]
            views.runs[local[index]] = state.runs[index]
            views.samples[local[index]] = state.samples_processed[index]

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        atexit.unregister(self.close)
        for shard, conn in enumerate(self._conns):
            try:
                conn.send(("stop",))
                self._recv(shard)
            except (OSError, RuntimeError, BrokenPipeError):
                pass
            finally:
                conn.close()
        for process in self._processes:
            process.join(timeout=5.0)
            if process.is_alive():  # pragma: no cover - stuck worker
                process.terminate()
                process.join(timeout=5.0)
        for views in self._views:
            try:
                views.release()
            except BufferError:  # pragma: no cover - stray view reference
                pass
        self._views.clear()
        for block in self._blocks:
            try:
                block.unlink()
            except FileNotFoundError:  # pragma: no cover - already unlinked
                pass
        self._blocks.clear()

    def __del__(self) -> None:  # pragma: no cover - GC-order dependent
        try:
            self.close()
        except Exception:
            pass
