"""Pluggable execution backends for the batched sDTW engine.

:class:`~repro.batch.engine.BatchSDTWEngine` is a *lane manager*: it decides
which read occupies which lane, when lanes are recycled, and what the
per-round occupancy trace looks like. *Where and how* the lane-stacked
:class:`~repro.core.sdtw.BatchSDTWState` actually advances is this module's
job. An :class:`ExecutionBackend` owns the resident DP state and exposes
three data-movement verbs plus lane bookkeeping:

* ``advance(lanes, queries)`` — the per-round hot path: feed each listed lane
  its new (kernel-scale) query samples and return the post-advance cost and
  end position per lane;
* ``gather(lanes)`` / ``scatter(lanes, state)`` — stack lane state out of /
  into the backend (snapshots, tests, interop); cold paths;
* ``allocate`` / ``reset`` — capacity growth and lane recycling.

Backends are **panel-aware**: the reference they hold may be a
:class:`~repro.core.panel.TargetPanel`'s concatenated column space, whose
per-target offsets arrive as ``block_starts``. ``advance`` returns
``(costs, ends)`` of shape ``(n_lanes, n_blocks)`` — one per-target
cost/local-end pair per lane, bit-identical to independent single-reference
runs (a plain single reference is one block, so the arrays are just
``(n_lanes, 1)``).

Three implementations are registered, mirroring how UNCALLED exposes its DTW
variants behind a string-keyed ``METHODS`` mapping:

* :class:`NumpyBackend` (``"numpy"``) — the in-process path: one
  :class:`BatchSDTWState` in this process, advanced by
  :func:`~repro.core.sdtw.sdtw_resume_batch`. Exactly the execution PR 2's
  monolithic engine performed. ``tile_columns`` optionally advances the
  columns in cache-sized blocks (same results; fewer full-row memory sweeps
  on genome-scale references).
* :class:`ShardedProcessBackend` (``"sharded"``) — **lanes** striped across a
  persistent pool of worker processes, one shard of the stacked state
  resident per worker. Per round only the ragged query chunks travel down
  the pipes and only the per-lane cost/end snapshots travel back; the rows
  themselves never move. Each shard's state lives in a shared-memory block
  (``int32`` rows for the all-integer hardware configurations — half the
  footprint), so gather/scatter/reset are zero-copy parent-side reads and
  writes, with no worker round trip. Scales with the *channel* count.
* :class:`ColumnShardedBackend` (``"colsharded"``) — **reference columns**
  striped across the worker pool: every worker holds all lanes but only its
  contiguous column tile. Per round the parent snapshots each tile's left
  *halo* (the last ``max(chunk)`` columns of its left neighbour, read from
  shared memory) and ships it with the chunks; workers advance their tile
  exactly (the halo re-computation is discarded) and return per-target
  partial minima, which the parent merges left-to-right. This is the shape
  that parallelizes a **single-channel genome-scale** workload, where lane
  sharding has nothing to stripe.
* :class:`GpuArrayBackend` (``"gpu"``) — the lane-stacked state resident in
  **device memory**, advanced by the same wavefront kernel through a
  :class:`~repro.core.array_module.ArrayModule` (CuPy preferred, Torch as a
  fallback). The name is always registered; instantiating it without a GPU
  array library raises a :class:`RuntimeError` with an install hint, and
  ``array_module="numpy"`` runs the device code path on the host (how CI
  covers it without a GPU). ``tile_columns`` bounds the per-advance working
  set — device-memory micro-batching over the exact halo-tiled advance.
* :class:`~repro.batch.native.NativeBackend` (``"native"``) — the int32 fast
  path compiled to a Numba ``njit`` scalar loop, where pruning's early
  abandoning is a real ``break`` instead of a masked vector op. Like
  ``"gpu"`` without CuPy, the name is always registered and construction
  without Numba raises with an install hint.

All backends run the same kernel on the same per-lane state, so per-lane,
per-target costs, rows and therefore Read Until decisions are bit-identical —
backend selection is purely an execution concern, which is what lets
``BatchSquiggleClassifier(..., backend="sharded")`` scale a full flowcell
across cores without touching decision logic.

Every ``advance`` additionally accepts per-lane ``prune_bounds`` (kill
thresholds for the kernel's pruning layer — see
:func:`~repro.core.sdtw.sdtw_resume_batch`) and accumulates the
advanced/pruned cell counts in :attr:`ExecutionBackend.stats`; worker
backends ship the per-round deltas back inside their reply payloads.
"""

from __future__ import annotations

import atexit
import multiprocessing as mp
import os
import time
import traceback
from math import ceil
from multiprocessing import shared_memory
from typing import Any, Callable, Dict, List, Optional, Protocol, Sequence, Tuple, Union

import numpy as np

from repro.core.array_module import ArrayModule, get_array_module, gpu_array_module
from repro.core.config import SDTWConfig
from repro.obs.trace import NULL_TRACER, Tracer, worker_span
from repro.core.sdtw import (
    AdvanceStats,
    BatchSDTWState,
    normalize_block_starts,
    reduce_block_minima,
    sdtw_resume_batch,
    sdtw_resume_batch_arrays,
    tile_block_starts,
    tile_halo_start,
)

__all__ = [
    "ColumnShardedBackend",
    "ExecutionBackend",
    "GpuArrayBackend",
    "NumpyBackend",
    "ShardedProcessBackend",
    "available_backends",
    "create_backend",
    "register_backend",
]


class ExecutionBackend(Protocol):
    """Where the lane-stacked sDTW state lives and how it advances.

    Implementations own one logical ``(capacity, reference_length)``
    :class:`BatchSDTWState` (however it is physically stored) and must keep
    per-lane results bit-identical to per-read :func:`sdtw_resume` calls —
    the lane manager and every layer above it treat backends as
    interchangeable.
    """

    backend_name: str

    # Cumulative advanced/pruned cell counts across every ``advance`` call;
    # the engine reads (and a fresh instance resets) these for telemetry.
    stats: AdvanceStats

    @property
    def capacity(self) -> int:
        """Lanes currently allocated."""
        ...

    @property
    def reference_length(self) -> int: ...

    @property
    def n_blocks(self) -> int:
        """Targets in the panel this backend's reference concatenates (>= 1)."""
        ...

    def allocate(self, min_capacity: int) -> None:
        """Grow storage to at least ``min_capacity`` lanes (never shrinks).

        Existing lane state is preserved; new lanes come up zeroed. The
        backend may round the capacity up (e.g. to a multiple of its shard
        count) — callers re-read :attr:`capacity` afterwards.
        """
        ...

    def reset(self, lanes: np.ndarray) -> None:
        """Return the given lanes to the fresh (no samples consumed) state."""
        ...

    def advance(
        self,
        lanes: np.ndarray,
        queries: Sequence[np.ndarray],
        prune_bounds: Optional[np.ndarray] = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Advance each listed lane with its new query samples (the hot path).

        Returns ``(costs, end_positions)`` of shape ``(len(lanes),
        n_blocks)``: the post-advance cost and block-local end position per
        lane **per panel target**, bit-identical to independent
        single-reference runs. The backend updates its resident
        rows/runs/samples in place. ``prune_bounds`` (one kill threshold per
        listed lane, ``inf`` = never prune) engages the kernel's pruning
        layer; the engine only passes it to backends when pruning is
        enabled, so implementations ignoring the kwarg stay compatible with
        unpruned runs.
        """
        ...

    def gather(self, lanes: np.ndarray) -> BatchSDTWState:
        """Stack the given lanes' state into a fresh :class:`BatchSDTWState`."""
        ...

    def scatter(self, lanes: np.ndarray, state: BatchSDTWState) -> None:
        """Write stacked lane state back into the backend's resident storage."""
        ...

    def close(self) -> None:
        """Release workers/storage. Idempotent; the backend is unusable after."""
        ...


# ------------------------------------------------------------------- registry
BackendFactory = Callable[..., ExecutionBackend]

_BACKENDS: Dict[str, BackendFactory] = {}


def register_backend(name: str) -> Callable[[BackendFactory], BackendFactory]:
    """Register an execution-backend factory under a string key (decorator).

    Factories are called as ``factory(reference, config, capacity,
    block_starts=..., **options)`` and must return an object satisfying
    :class:`ExecutionBackend`.
    """

    def wrap(factory: BackendFactory) -> BackendFactory:
        key = name.lower()
        if key in _BACKENDS:
            raise ValueError(f"execution backend {name!r} is already registered")
        _BACKENDS[key] = factory
        return factory

    return wrap


def available_backends() -> Tuple[str, ...]:
    """The registered backend names, sorted."""
    return tuple(sorted(_BACKENDS))


def create_backend(
    name: str,
    reference: np.ndarray,
    config: SDTWConfig,
    capacity: int,
    **options: Any,
) -> ExecutionBackend:
    """Instantiate a registered execution backend by name.

    An unknown name raises :class:`ValueError` listing
    :func:`available_backends`, so callers (CLI ``--backend`` choices, spec
    validation) can surface the registry verbatim.
    """
    try:
        factory = _BACKENDS[name.lower()]
    except KeyError:
        known = ", ".join(available_backends()) or "(none)"
        raise ValueError(
            f"unknown execution backend {name!r}; available backends: {known}"
        ) from None
    return factory(reference, config, capacity, **options)


def _state_dtypes(config: SDTWConfig) -> Tuple[np.dtype, np.dtype]:
    """(rows, runs) storage dtypes for a backend's resident state.

    The all-integer hardware data path (quantized, absolute distance,
    whole-number bonus — the preconditions of the kernel's int32 fast path)
    stores ``int32`` rows and runs: every intermediate the kernel produces on
    that path fits comfortably, and the footprint halves. Other
    configurations store the :class:`BatchSDTWState` dtypes directly.
    """
    if (
        config.quantize
        and config.distance == "absolute"
        and float(config.match_bonus).is_integer()
    ):
        return np.dtype(np.int32), np.dtype(np.int32)
    rows = np.dtype(np.int64) if config.quantize else np.dtype(np.float64)
    return rows, np.dtype(np.int64)


# --------------------------------------------------------------- numpy backend
@register_backend("numpy")
class NumpyBackend:
    """In-process execution: one resident :class:`BatchSDTWState`.

    This is PR 2's engine execution extracted verbatim: ``advance`` gathers
    the listed lanes into a contiguous stacked state, runs one
    :func:`sdtw_resume_batch` wavefront, and scatters the advanced rows back.
    ``block_starts`` makes the reference a multi-target panel column space;
    ``tile_columns`` advances the columns in cache-sized blocks (identical
    results — see the kernel's tiling notes).
    """

    backend_name = "numpy"
    # Observability hook the engine overwrites; the shared disabled tracer
    # makes every span below a single `if` (same on every built-in backend).
    tracer: Tracer = NULL_TRACER

    def __init__(
        self,
        reference: np.ndarray,
        config: Optional[SDTWConfig] = None,
        capacity: int = 8,
        block_starts: Optional[np.ndarray] = None,
        tile_columns: Optional[int] = None,
    ) -> None:
        self.config = config if config is not None else SDTWConfig()
        self.reference_values = np.asarray(
            reference, dtype=np.int64 if self.config.quantize else np.float64
        )
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if tile_columns is not None and tile_columns <= 0:
            raise ValueError("tile_columns must be positive")
        self.block_starts = normalize_block_starts(block_starts, self.reference_values.size)
        self.tile_columns = None if tile_columns is None else int(tile_columns)
        self.stats = AdvanceStats()
        self._state = BatchSDTWState.initial(
            capacity, self.reference_values.size, self.config
        )

    @property
    def capacity(self) -> int:
        return self._state.n_lanes

    @property
    def reference_length(self) -> int:
        return self._state.reference_length

    @property
    def n_blocks(self) -> int:
        return int(self.block_starts.size)

    def allocate(self, min_capacity: int) -> None:
        old = self._state
        if min_capacity <= old.n_lanes:
            return
        state = BatchSDTWState.initial(min_capacity, old.reference_length, self.config)
        state.rows[: old.n_lanes] = old.rows
        state.runs[: old.n_lanes] = old.runs
        state.samples_processed[: old.n_lanes] = old.samples_processed
        self._state = state

    def reset(self, lanes: np.ndarray) -> None:
        self._state.rows[lanes] = 0
        self._state.runs[lanes] = 1
        self._state.samples_processed[lanes] = 0

    def advance(
        self,
        lanes: np.ndarray,
        queries: Sequence[np.ndarray],
        prune_bounds: Optional[np.ndarray] = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        tracer = self.tracer
        with tracer.span("backend.advance", backend="numpy", n_lanes=int(np.size(lanes))):
            with tracer.span("backend.gather"):
                gathered = BatchSDTWState(
                    rows=self._state.rows[lanes],
                    runs=self._state.runs[lanes],
                    samples_processed=self._state.samples_processed[lanes],
                )
            # track_runs=False: the engine never reads raw dwell counters, and the
            # capped counters the fast path keeps are lossless for resumption.
            with tracer.span("backend.wavefront"):
                advanced = sdtw_resume_batch(
                    queries,
                    self.reference_values,
                    self.config,
                    state=gathered,
                    track_runs=False,
                    block_starts=self.block_starts,
                    tile_columns=self.tile_columns,
                    prune_bounds=prune_bounds,
                    stats=self.stats,
                )
            with tracer.span("backend.scatter"):
                self._state.rows[lanes] = advanced.rows
                self._state.runs[lanes] = advanced.runs
                self._state.samples_processed[lanes] = advanced.samples_processed
            with tracer.span("backend.reduce"):
                return reduce_block_minima(advanced.rows, self.block_starts)

    def gather(self, lanes: np.ndarray) -> BatchSDTWState:
        return BatchSDTWState(
            rows=self._state.rows[lanes].copy(),
            runs=self._state.runs[lanes].copy(),
            samples_processed=self._state.samples_processed[lanes].copy(),
        )

    def scatter(self, lanes: np.ndarray, state: BatchSDTWState) -> None:
        self._state.rows[lanes] = state.rows
        self._state.runs[lanes] = state.runs
        self._state.samples_processed[lanes] = state.samples_processed

    def close(self) -> None:
        return None


# ------------------------------------------------------------- sharded backend
def _attach_shm(name: str) -> shared_memory.SharedMemory:
    """Attach to the parent's shared block without claiming ownership.

    Workers are children of the creating process, so they share its resource
    tracker: their attach re-adds the same name to the tracker's (set-based)
    cache, which is a no-op, and the parent's ``unlink`` clears it exactly
    once. No per-worker unregistering is needed — or safe.
    """
    return shared_memory.SharedMemory(name=name)


class _ShardViews:
    """Numpy views of one shard's state inside a shared-memory block.

    Layout: ``rows (local_capacity, reference_length)`` then ``runs`` of the
    same shape then ``samples_processed (local_capacity,)`` int64, padded to
    alignment. Parent and worker both construct views over the same block,
    so reset/gather/scatter are plain array operations with no pipe traffic.
    """

    _ALIGN = 16

    def __init__(
        self,
        block: shared_memory.SharedMemory,
        local_capacity: int,
        reference_length: int,
        rows_dtype: np.dtype,
        runs_dtype: np.dtype,
    ) -> None:
        self.block = block
        shape = (local_capacity, reference_length)
        rows_bytes = self._padded(int(rows_dtype.itemsize) * local_capacity * reference_length)
        runs_bytes = self._padded(int(runs_dtype.itemsize) * local_capacity * reference_length)
        self.rows = np.ndarray(shape, dtype=rows_dtype, buffer=block.buf, offset=0)
        self.runs = np.ndarray(shape, dtype=runs_dtype, buffer=block.buf, offset=rows_bytes)
        self.samples = np.ndarray(
            (local_capacity,), dtype=np.int64, buffer=block.buf, offset=rows_bytes + runs_bytes
        )

    @classmethod
    def _padded(cls, nbytes: int) -> int:
        return (nbytes + cls._ALIGN - 1) // cls._ALIGN * cls._ALIGN

    @classmethod
    def nbytes(
        cls,
        local_capacity: int,
        reference_length: int,
        rows_dtype: np.dtype,
        runs_dtype: np.dtype,
    ) -> int:
        cells = local_capacity * reference_length
        return (
            cls._padded(int(rows_dtype.itemsize) * cells)
            + cls._padded(int(runs_dtype.itemsize) * cells)
            + 8 * local_capacity
        )

    def initialize(self, lanes: Optional[np.ndarray] = None) -> None:
        """Fresh-lane state: zero rows/samples, unit runs."""
        target = slice(None) if lanes is None else lanes
        self.rows[target] = 0
        self.runs[target] = 1
        self.samples[target] = 0

    def release(self) -> None:
        """Drop the numpy views (they pin the buffer) and close the block."""
        del self.rows, self.runs, self.samples
        self.block.close()


def _check_int32_rows(rows: np.ndarray) -> None:
    """Reject advanced rows that no longer fit the int32 shared storage."""
    if rows.size:
        peak = int(np.abs(rows).max())
        if peak >= 2**31:
            raise OverflowError(
                f"advanced rows reach {peak}, beyond int32 shard storage; "
                "use the numpy backend for this configuration"
            )


def _shard_worker(
    conn,
    shm_name: str,
    local_capacity: int,
    reference: np.ndarray,
    config: SDTWConfig,
    block_starts: np.ndarray,
) -> None:
    """Worker loop: advance the resident shard state on request.

    The shard's rows/runs/samples live in the parent-created shared block;
    this process is the only writer between an ``advance`` request and its
    reply, and the parent only touches the block while no request is in
    flight, so no locking is needed.

    Advance requests carry a trace flag; when set, the worker stamps its own
    span tuples on the shared monotonic clock (workers are forked children,
    so parent and worker ``perf_counter`` readings share one timeline) and
    ships them back inside the reply for the parent tracer to merge.
    """
    rows_dtype, runs_dtype = _state_dtypes(config)
    views = _ShardViews(
        _attach_shm(shm_name), local_capacity, reference.size, rows_dtype, runs_dtype
    )
    int32_rows = rows_dtype == np.dtype(np.int32)
    clock = time.perf_counter
    try:
        while True:
            message = conn.recv()
            command = message[0]
            try:
                if command == "advance":
                    _, local_lanes, queries, bounds, trace = message
                    start_s = clock() if trace else 0.0
                    state = BatchSDTWState(
                        rows=views.rows[local_lanes],
                        runs=views.runs[local_lanes],
                        samples_processed=views.samples[local_lanes],
                    )
                    stats = AdvanceStats()
                    wave_start_s = clock() if trace else 0.0
                    advanced = sdtw_resume_batch(
                        queries,
                        reference,
                        config,
                        state=state,
                        track_runs=False,
                        block_starts=block_starts,
                        prune_bounds=bounds,
                        stats=stats,
                    )
                    wave_end_s = clock() if trace else 0.0
                    if int32_rows:
                        _check_int32_rows(advanced.rows)
                    views.rows[local_lanes] = advanced.rows
                    views.runs[local_lanes] = advanced.runs
                    views.samples[local_lanes] = advanced.samples_processed
                    payload = reduce_block_minima(advanced.rows, block_starts)
                    records = None
                    if trace:
                        records = [
                            worker_span("worker.wavefront", wave_start_s, wave_end_s, depth=1),
                            worker_span(
                                "worker.advance",
                                start_s,
                                clock(),
                                child_s=wave_end_s - wave_start_s,
                            ),
                        ]
                    delta = (stats.cells_advanced, stats.cells_pruned)
                    conn.send(("ok", (payload, records, delta)))
                elif command == "attach":
                    _, shm_name, local_capacity = message
                    old = views
                    views = _ShardViews(
                        _attach_shm(shm_name),
                        local_capacity,
                        reference.size,
                        rows_dtype,
                        runs_dtype,
                    )
                    old.release()
                    conn.send(("ok", None))
                elif command == "stop":
                    conn.send(("ok", None))
                    return
                else:  # pragma: no cover - protocol violation
                    raise ValueError(f"unknown shard command {command!r}")
            except Exception:
                conn.send(("error", traceback.format_exc()))
    except (EOFError, KeyboardInterrupt):  # pragma: no cover - parent died
        return
    finally:
        try:
            views.release()
        except BufferError:  # pragma: no cover - stray view reference
            pass
        conn.close()


class _WorkerPoolBackend:
    """Shared lifecycle of the multi-process backends.

    Owns the worker pool plumbing both sharding shapes need: the start-method
    choice, the request/reply pipes with error propagation, and the
    close/atexit teardown of processes, parent-side views and shared blocks.
    Subclasses populate ``_blocks``/``_views``/``_conns``/``_processes`` in
    their constructors and call :meth:`_register_finalizer` once spawned.
    """

    def __init__(self) -> None:
        self._closed = False
        # fork shares the parent's pages and starts in milliseconds; fall back
        # to the default (spawn) where fork is unavailable. Workers only need
        # picklable arguments, so both start methods work.
        methods = mp.get_all_start_methods()
        self._ctx = mp.get_context("fork" if "fork" in methods else None)
        self._blocks: List[shared_memory.SharedMemory] = []
        self._views: List[_ShardViews] = []
        self._conns = []
        self._processes = []

    def _register_finalizer(self) -> None:
        # Daemon processes die with the interpreter, but the shared segments
        # must be unlinked explicitly or they outlive the run.
        self._finalizer = atexit.register(self.close)

    def _recv(self, shard: int):
        try:
            status, payload = self._conns[shard].recv()
        except EOFError:
            raise RuntimeError(
                f"{self.backend_name} backend worker {shard} died unexpectedly"
            ) from None
        if status != "ok":
            raise RuntimeError(f"{self.backend_name} backend worker {shard} failed:\n{payload}")
        return payload

    def _request(self, shard: int, message) -> Any:
        self._conns[shard].send(message)
        return self._recv(shard)

    # Bounded wait for the stop handshake (shared across all shards); an
    # instance attribute so tests can shrink it for dead-worker scenarios.
    stop_timeout_s = 5.0

    def close(self) -> None:
        """Shut the pool down; safe whatever state a round left the pipes in.

        A session abandoned mid-round — an advance dispatched whose replies
        were never consumed, a worker that raised, a worker that died — must
        neither hang teardown nor leak the shared-memory segments. Stale
        replies are drained first (so the stop ack is not mistaken for
        them), the stop handshake waits a bounded time, workers still alive
        after the deadline are terminated, and every segment is unlinked
        unconditionally.
        """
        if self._closed:
            return
        self._closed = True
        atexit.unregister(self.close)
        deadline = time.monotonic() + self.stop_timeout_s
        for conn in self._conns:
            try:
                while conn.poll(0):  # leftovers of an abandoned round
                    conn.recv()
                conn.send(("stop",))
            except (OSError, ValueError, EOFError, BrokenPipeError):
                pass
        for conn in self._conns:
            try:
                # Anything arriving before the ack is a late reply to the
                # abandoned round; consume until the ack or the deadline.
                while True:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0 or not conn.poll(remaining):
                        break
                    if conn.recv() == ("ok", None):
                        break
            except (OSError, ValueError, EOFError, BrokenPipeError):
                pass
            finally:
                conn.close()
        for process in self._processes:
            process.join(timeout=max(deadline - time.monotonic(), 0.1))
            if process.is_alive():
                process.terminate()
                process.join(timeout=5.0)
            if process.is_alive():  # pragma: no cover - unkillable worker
                process.kill()
                process.join(timeout=5.0)
        for views in self._views:
            try:
                views.release()
            except BufferError:  # pragma: no cover - stray view reference
                pass
        self._views.clear()
        for block in self._blocks:
            try:
                block.unlink()
            except FileNotFoundError:  # pragma: no cover - already unlinked
                pass
        self._blocks.clear()

    def __del__(self) -> None:  # pragma: no cover - GC-order dependent
        try:
            self.close()
        except Exception:
            pass


@register_backend("sharded")
class ShardedProcessBackend(_WorkerPoolBackend):
    """Lanes striped across a persistent pool of worker processes.

    Lane ``l`` lives in shard ``l % workers`` at local slot ``l // workers``,
    so consecutive lane admissions spread across shards and every shard's
    occupancy stays within one lane of the others — the static striping keeps
    per-round shard batches balanced without any migration machinery.

    Each worker holds its shard of the stacked state resident in a
    shared-memory block the parent allocates (``int32`` rows on the
    all-integer hardware path). Per engine round the parent sends every busy
    shard its ragged query chunks, the shards run their wavefronts
    concurrently, and only the per-lane cost/end snapshots come back — the
    DP rows never cross a pipe. ``gather``/``scatter``/``reset`` are
    parent-side shared-memory reads and writes.
    """

    backend_name = "sharded"
    tracer: Tracer = NULL_TRACER

    def __init__(
        self,
        reference: np.ndarray,
        config: Optional[SDTWConfig] = None,
        capacity: int = 8,
        workers: Optional[int] = None,
        block_starts: Optional[np.ndarray] = None,
    ) -> None:
        super().__init__()
        self.config = config if config is not None else SDTWConfig()
        self.reference_values = np.asarray(
            reference, dtype=np.int64 if self.config.quantize else np.float64
        )
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if workers is None:
            workers = max(1, min(8, (os.cpu_count() or 2) - 1))
        if workers <= 0:
            raise ValueError("workers must be positive")
        self.n_workers = int(workers)
        self.block_starts = normalize_block_starts(block_starts, self.reference_values.size)
        self._rows_dtype, self._runs_dtype = _state_dtypes(self.config)
        self._local_capacity = max(1, ceil(capacity / self.n_workers))
        self.stats = AdvanceStats()

        for shard in range(self.n_workers):
            block = self._create_block(self._local_capacity)
            views = _ShardViews(
                block,
                self._local_capacity,
                self.reference_values.size,
                self._rows_dtype,
                self._runs_dtype,
            )
            views.initialize()
            parent_conn, worker_conn = self._ctx.Pipe()
            process = self._ctx.Process(
                target=_shard_worker,
                args=(
                    worker_conn,
                    block.name,
                    self._local_capacity,
                    self.reference_values,
                    self.config,
                    self.block_starts,
                ),
                daemon=True,
                name=f"sdtw-shard-{shard}",
            )
            process.start()
            worker_conn.close()
            self._blocks.append(block)
            self._views.append(views)
            self._conns.append(parent_conn)
            self._processes.append(process)
        self._register_finalizer()

    # ----------------------------------------------------------- bookkeeping
    @property
    def capacity(self) -> int:
        return self._local_capacity * self.n_workers

    @property
    def reference_length(self) -> int:
        return int(self.reference_values.size)

    @property
    def n_blocks(self) -> int:
        return int(self.block_starts.size)

    def _create_block(self, local_capacity: int) -> shared_memory.SharedMemory:
        size = _ShardViews.nbytes(
            local_capacity, self.reference_values.size, self._rows_dtype, self._runs_dtype
        )
        return shared_memory.SharedMemory(create=True, size=size)

    def _shard_of(self, lanes: np.ndarray) -> np.ndarray:
        return np.asarray(lanes, dtype=np.intp) % self.n_workers

    def _local_of(self, lanes: np.ndarray) -> np.ndarray:
        return np.asarray(lanes, dtype=np.intp) // self.n_workers

    # ------------------------------------------------------------- lifecycle
    def allocate(self, min_capacity: int) -> None:
        if self._closed:
            raise RuntimeError("backend is closed")
        if min_capacity <= self.capacity:
            return
        local_capacity = max(self._local_capacity + 1, ceil(min_capacity / self.n_workers))
        for shard in range(self.n_workers):
            block = self._create_block(local_capacity)
            views = _ShardViews(
                block,
                local_capacity,
                self.reference_values.size,
                self._rows_dtype,
                self._runs_dtype,
            )
            views.initialize()
            old = self._views[shard]
            views.rows[: self._local_capacity] = old.rows
            views.runs[: self._local_capacity] = old.runs
            views.samples[: self._local_capacity] = old.samples
            self._request(shard, ("attach", block.name, local_capacity))
            old_block = old.block
            old.release()
            old_block.unlink()
            self._blocks[shard] = block
            self._views[shard] = views
        self._local_capacity = local_capacity

    def reset(self, lanes: np.ndarray) -> None:
        lanes = np.asarray(lanes, dtype=np.intp)
        shards = self._shard_of(lanes)
        local = self._local_of(lanes)
        for shard in np.unique(shards):
            self._views[shard].initialize(local[shards == shard])

    def advance(
        self,
        lanes: np.ndarray,
        queries: Sequence[np.ndarray],
        prune_bounds: Optional[np.ndarray] = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        if self._closed:
            raise RuntimeError("backend is closed")
        tracer = self.tracer
        trace = tracer.enabled
        with tracer.span("backend.advance", backend="sharded", n_lanes=int(np.size(lanes))):
            lanes = np.asarray(lanes, dtype=np.intp)
            shards = self._shard_of(lanes)
            local = self._local_of(lanes)
            busy: List[Tuple[int, np.ndarray]] = []
            with tracer.span("backend.dispatch"):
                for shard in np.unique(shards):
                    members = np.flatnonzero(shards == shard)
                    bounds = None if prune_bounds is None else np.asarray(prune_bounds)[members]
                    self._conns[shard].send(
                        ("advance", local[members], [queries[i] for i in members], bounds, trace)
                    )
                    busy.append((int(shard), members))
            costs = np.empty(
                (lanes.size, self.n_blocks),
                dtype=np.float64 if not self.config.quantize else np.int64,
            )
            ends = np.empty((lanes.size, self.n_blocks), dtype=np.intp)
            # Every busy shard's reply must be consumed even if an earlier one
            # failed — an unread reply would desync the request/reply protocol
            # and surface as a *stale* result on the next call.
            errors: List[Exception] = []
            with tracer.span("backend.collect"):
                for shard, members in busy:
                    try:
                        (shard_costs, shard_ends), records, delta = self._recv(shard)
                    except RuntimeError as error:
                        errors.append(error)
                        continue
                    tracer.merge_worker_records(records, track=f"sharded-worker-{shard}")
                    self.stats.add(*delta)
                    costs[members] = shard_costs
                    ends[members] = shard_ends
            if errors:
                # Shards that succeeded have already applied the round; the
                # failed shards have not. Callers should treat the backend's
                # state as undefined for the lanes of this round.
                raise errors[0]
            return costs, ends

    def gather(self, lanes: np.ndarray) -> BatchSDTWState:
        lanes = np.asarray(lanes, dtype=np.intp)
        shards = self._shard_of(lanes)
        local = self._local_of(lanes)
        rows = np.empty(
            (lanes.size, self.reference_length),
            dtype=np.int64 if self.config.quantize else np.float64,
        )
        runs = np.empty((lanes.size, self.reference_length), dtype=np.int64)
        samples = np.empty(lanes.size, dtype=np.int64)
        for index in range(lanes.size):
            views = self._views[shards[index]]
            rows[index] = views.rows[local[index]]
            runs[index] = views.runs[local[index]]
            samples[index] = views.samples[local[index]]
        return BatchSDTWState(rows=rows, runs=runs, samples_processed=samples)

    def scatter(self, lanes: np.ndarray, state: BatchSDTWState) -> None:
        lanes = np.asarray(lanes, dtype=np.intp)
        shards = self._shard_of(lanes)
        local = self._local_of(lanes)
        for index in range(lanes.size):
            views = self._views[shards[index]]
            views.rows[local[index]] = state.rows[index]
            views.runs[local[index]] = state.runs[index]
            views.samples[local[index]] = state.samples_processed[index]


# -------------------------------------------------------- column-sharded backend
def _column_worker(
    conn,
    shm_name: str,
    capacity: int,
    reference: np.ndarray,
    config: SDTWConfig,
    tile_start: int,
    tile_end: int,
    block_starts: np.ndarray,
) -> None:
    """Worker loop owning one contiguous column tile for **all** lanes.

    Every advance request carries the tile's left halo — the last
    ``max(chunk)`` columns of the pre-advance state to the tile's left, read
    from shared memory by the parent before any worker starts writing. The
    worker re-runs the wavefront over ``[halo_start, tile_end)`` and keeps
    only its own columns; because information moves at most one column per
    query step, those columns are bit-identical to the untiled advance.
    """
    rows_dtype, runs_dtype = _state_dtypes(config)
    tile_width = tile_end - tile_start
    views = _ShardViews(_attach_shm(shm_name), capacity, tile_width, rows_dtype, runs_dtype)
    int32_rows = rows_dtype == np.dtype(np.int32)
    clock = time.perf_counter
    try:
        while True:
            message = conn.recv()
            command = message[0]
            try:
                if command == "advance":
                    _, lanes, queries, halo_rows, halo_runs, halo_start, bounds, trace = message
                    start_s = clock() if trace else 0.0
                    rows = views.rows[lanes]
                    runs = views.runs[lanes]
                    if halo_start < tile_start:
                        rows = np.concatenate([halo_rows, rows], axis=1)
                        runs = np.concatenate([halo_runs, runs], axis=1)
                    state = BatchSDTWState(
                        rows=rows, runs=runs, samples_processed=views.samples[lanes]
                    )
                    sub_starts = tile_block_starts(block_starts, halo_start, tile_end)
                    stats = AdvanceStats()
                    wave_start_s = clock() if trace else 0.0
                    advanced = sdtw_resume_batch(
                        queries,
                        reference[halo_start:tile_end],
                        config,
                        state=state,
                        track_runs=False,
                        block_starts=sub_starts,
                        prune_bounds=bounds,
                        stats=stats,
                    )
                    wave_end_s = clock() if trace else 0.0
                    keep = tile_start - halo_start
                    tile_rows = advanced.rows[:, keep:]
                    if int32_rows:
                        _check_int32_rows(tile_rows)
                    views.rows[lanes] = tile_rows
                    views.runs[lanes] = advanced.runs[:, keep:]
                    views.samples[lanes] = advanced.samples_processed
                    payload = _tile_block_minima(
                        tile_rows, tile_start, tile_end, block_starts, reference.size
                    )
                    records = None
                    if trace:
                        records = [
                            worker_span("worker.wavefront", wave_start_s, wave_end_s, depth=1),
                            worker_span(
                                "worker.advance",
                                start_s,
                                clock(),
                                child_s=wave_end_s - wave_start_s,
                            ),
                        ]
                    delta = (stats.cells_advanced, stats.cells_pruned)
                    conn.send(("ok", (payload, records, delta)))
                elif command == "attach":
                    _, shm_name, capacity = message
                    old = views
                    views = _ShardViews(
                        _attach_shm(shm_name), capacity, tile_width, rows_dtype, runs_dtype
                    )
                    old.release()
                    conn.send(("ok", None))
                elif command == "stop":
                    conn.send(("ok", None))
                    return
                else:  # pragma: no cover - protocol violation
                    raise ValueError(f"unknown column-shard command {command!r}")
            except Exception:
                conn.send(("error", traceback.format_exc()))
    except (EOFError, KeyboardInterrupt):  # pragma: no cover - parent died
        return
    finally:
        try:
            views.release()
        except BufferError:  # pragma: no cover - stray view reference
            pass
        conn.close()


def _tile_block_minima(
    tile_rows: np.ndarray,
    tile_start: int,
    tile_end: int,
    block_starts: np.ndarray,
    reference_length: int,
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-block partial minima of one tile's advanced rows.

    Blocks not overlapping the tile report the dtype's 'never wins' sentinel
    so the parent's strictly-smaller merge keeps the leftmost argmin — the
    tie-breaking :func:`np.argmin` uses over the full row. ``ends`` are
    block-local, matching :func:`reduce_block_minima`.
    """
    n_lanes = tile_rows.shape[0]
    n_blocks = block_starts.size
    sentinel = (
        np.iinfo(np.int64).max
        if np.issubdtype(tile_rows.dtype, np.integer)
        else np.inf
    )
    bounds = np.append(block_starts, reference_length)
    costs = np.full((n_lanes, n_blocks), sentinel, dtype=tile_rows.dtype)
    ends = np.zeros((n_lanes, n_blocks), dtype=np.intp)
    for block in range(n_blocks):
        overlap_start = max(int(bounds[block]), tile_start)
        overlap_end = min(int(bounds[block + 1]), tile_end)
        if overlap_start >= overlap_end:
            continue
        segment = tile_rows[:, overlap_start - tile_start : overlap_end - tile_start]
        local = np.argmin(segment, axis=1)
        costs[:, block] = segment[np.arange(n_lanes), local]
        ends[:, block] = local + (overlap_start - int(bounds[block]))
    return costs, ends


@register_backend("colsharded")
class ColumnShardedBackend(_WorkerPoolBackend):
    """Reference **columns** striped across a persistent worker pool.

    The dual of :class:`ShardedProcessBackend`: every worker holds *all*
    lanes but only a contiguous tile of the reference columns, so a workload
    with one (or few) channels against a genome-scale reference — where lane
    striping has nothing to distribute — still engages every core. Tiles are
    an equal contiguous partition of the concatenated panel column space;
    ragged panel targets simply fall across tile boundaries, since panel
    block boundaries and tile boundaries are independent.

    Per round the parent snapshots each tile's left halo (the last
    ``max(chunk)`` pre-advance columns, a parent-side shared-memory read)
    **before** dispatching any work, sends every worker its chunks + halo,
    and merges the returned per-target partial minima left to right —
    strictly-smaller updates, so ties resolve to the leftmost column exactly
    like ``np.argmin`` over the full row. Rows never cross a pipe;
    ``gather``/``scatter``/``reset`` are parent-side column-slice reads and
    writes across the tiles.
    """

    backend_name = "colsharded"
    tracer: Tracer = NULL_TRACER

    def __init__(
        self,
        reference: np.ndarray,
        config: Optional[SDTWConfig] = None,
        capacity: int = 8,
        workers: Optional[int] = None,
        block_starts: Optional[np.ndarray] = None,
    ) -> None:
        super().__init__()
        self.config = config if config is not None else SDTWConfig()
        self.reference_values = np.asarray(
            reference, dtype=np.int64 if self.config.quantize else np.float64
        )
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if workers is None:
            workers = max(1, min(8, (os.cpu_count() or 2) - 1))
        if workers <= 0:
            raise ValueError("workers must be positive")
        # A tile must hold at least one column.
        self.n_workers = int(min(workers, self.reference_values.size))
        self.block_starts = normalize_block_starts(block_starts, self.reference_values.size)
        self._rows_dtype, self._runs_dtype = _state_dtypes(self.config)
        self._capacity = int(capacity)
        self.stats = AdvanceStats()

        # Equal contiguous column tiles (the last one may be narrower).
        edges = np.linspace(0, self.reference_values.size, self.n_workers + 1, dtype=np.int64)
        self._tiles: List[Tuple[int, int]] = [
            (int(edges[i]), int(edges[i + 1])) for i in range(self.n_workers)
        ]

        for shard, (tile_start, tile_end) in enumerate(self._tiles):
            block = self._create_block(self._capacity, tile_end - tile_start)
            views = _ShardViews(
                block, self._capacity, tile_end - tile_start, self._rows_dtype, self._runs_dtype
            )
            views.initialize()
            parent_conn, worker_conn = self._ctx.Pipe()
            process = self._ctx.Process(
                target=_column_worker,
                args=(
                    worker_conn,
                    block.name,
                    self._capacity,
                    self.reference_values,
                    self.config,
                    tile_start,
                    tile_end,
                    self.block_starts,
                ),
                daemon=True,
                name=f"sdtw-coltile-{shard}",
            )
            process.start()
            worker_conn.close()
            self._blocks.append(block)
            self._views.append(views)
            self._conns.append(parent_conn)
            self._processes.append(process)
        self._register_finalizer()

    # ----------------------------------------------------------- bookkeeping
    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def reference_length(self) -> int:
        return int(self.reference_values.size)

    @property
    def n_blocks(self) -> int:
        return int(self.block_starts.size)

    def _create_block(self, capacity: int, tile_width: int) -> shared_memory.SharedMemory:
        size = _ShardViews.nbytes(capacity, tile_width, self._rows_dtype, self._runs_dtype)
        return shared_memory.SharedMemory(create=True, size=size)

    def _halo_columns(
        self, lanes: np.ndarray, column_start: int, column_end: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Copy pre-advance state columns ``[column_start, column_end)``.

        The range may span several tiles (a chunk longer than a tile width);
        pieces are assembled from the parent-side views.
        """
        width = column_end - column_start
        rows = np.empty((lanes.size, width), dtype=self._rows_dtype)
        runs = np.empty((lanes.size, width), dtype=self._runs_dtype)
        for (tile_start, tile_end), views in zip(self._tiles, self._views):
            piece_start = max(tile_start, column_start)
            piece_end = min(tile_end, column_end)
            if piece_start >= piece_end:
                continue
            destination = slice(piece_start - column_start, piece_end - column_start)
            source = slice(piece_start - tile_start, piece_end - tile_start)
            # Column-slice first (a view), then lane-index: copies only the
            # halo-wide window, not the whole (lanes, tile_width) tile.
            rows[:, destination] = views.rows[:, source][lanes]
            runs[:, destination] = views.runs[:, source][lanes]
        return rows, runs

    # ------------------------------------------------------------- lifecycle
    def allocate(self, min_capacity: int) -> None:
        if self._closed:
            raise RuntimeError("backend is closed")
        if min_capacity <= self._capacity:
            return
        for shard, (tile_start, tile_end) in enumerate(self._tiles):
            width = tile_end - tile_start
            block = self._create_block(min_capacity, width)
            views = _ShardViews(block, min_capacity, width, self._rows_dtype, self._runs_dtype)
            views.initialize()
            old = self._views[shard]
            views.rows[: self._capacity] = old.rows
            views.runs[: self._capacity] = old.runs
            views.samples[: self._capacity] = old.samples
            self._request(shard, ("attach", block.name, min_capacity))
            old_block = old.block
            old.release()
            old_block.unlink()
            self._blocks[shard] = block
            self._views[shard] = views
        self._capacity = int(min_capacity)

    def reset(self, lanes: np.ndarray) -> None:
        lanes = np.asarray(lanes, dtype=np.intp)
        # Every tile holds a column slice of each lane; samples are replicated
        # per tile, so all of them reset together.
        for views in self._views:
            views.initialize(lanes)

    def advance(
        self,
        lanes: np.ndarray,
        queries: Sequence[np.ndarray],
        prune_bounds: Optional[np.ndarray] = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        if self._closed:
            raise RuntimeError("backend is closed")
        tracer = self.tracer
        trace = tracer.enabled
        with tracer.span("backend.advance", backend="colsharded", n_lanes=int(np.size(lanes))):
            lanes = np.asarray(lanes, dtype=np.intp)
            halo_width = max((int(np.asarray(query).size) for query in queries), default=0)
            # Every tile worker sees the full per-lane bounds (column sharding
            # replicates lanes), so per-tile stats sum to the whole-row figure
            # plus the halo recompute — honest about the work actually done.
            bounds = None if prune_bounds is None else np.asarray(prune_bounds)
            # Snapshot every halo BEFORE dispatching: workers write their tiles
            # concurrently, and a halo must be the pre-advance state.
            requests = []
            with tracer.span("backend.halo"):
                for tile_start, tile_end in self._tiles:
                    halo_start = tile_halo_start(self.block_starts, tile_start, halo_width)
                    if halo_start < tile_start:
                        halo_rows, halo_runs = self._halo_columns(lanes, halo_start, tile_start)
                    else:
                        halo_rows = halo_runs = None
                    requests.append(
                        ("advance", lanes, queries, halo_rows, halo_runs, halo_start, bounds, trace)
                    )
            with tracer.span("backend.dispatch"):
                for shard, request in enumerate(requests):
                    self._conns[shard].send(request)

            costs = np.full(
                (lanes.size, self.n_blocks),
                np.iinfo(np.int64).max if self.config.quantize else np.inf,
                dtype=np.int64 if self.config.quantize else np.float64,
            )
            ends = np.zeros((lanes.size, self.n_blocks), dtype=np.intp)
            # Consume every reply even if an earlier shard failed (protocol sync),
            # merging partial minima in tile order: strictly-smaller wins, so a
            # tie keeps the leftmost tile — np.argmin's tie-breaking.
            errors: List[Exception] = []
            with tracer.span("backend.collect"):
                for shard in range(self.n_workers):
                    try:
                        (tile_costs, tile_ends), records, delta = self._recv(shard)
                    except RuntimeError as error:
                        errors.append(error)
                        continue
                    tracer.merge_worker_records(
                        records, track=f"colsharded-worker-{shard}"
                    )
                    self.stats.add(*delta)
                    better = tile_costs < costs
                    costs[better] = tile_costs[better]
                    ends[better] = tile_ends[better]
            if errors:
                # Tiles that succeeded already applied the round; the failed
                # tiles did not. The state is undefined for this round's lanes.
                raise errors[0]
            return costs, ends

    def gather(self, lanes: np.ndarray) -> BatchSDTWState:
        lanes = np.asarray(lanes, dtype=np.intp)
        rows = np.empty(
            (lanes.size, self.reference_length),
            dtype=np.int64 if self.config.quantize else np.float64,
        )
        runs = np.empty((lanes.size, self.reference_length), dtype=np.int64)
        for (tile_start, tile_end), views in zip(self._tiles, self._views):
            rows[:, tile_start:tile_end] = views.rows[lanes]
            runs[:, tile_start:tile_end] = views.runs[lanes]
        samples = np.asarray(self._views[0].samples[lanes], dtype=np.int64)
        return BatchSDTWState(rows=rows, runs=runs, samples_processed=samples)

    def scatter(self, lanes: np.ndarray, state: BatchSDTWState) -> None:
        lanes = np.asarray(lanes, dtype=np.intp)
        for (tile_start, tile_end), views in zip(self._tiles, self._views):
            views.rows[lanes] = state.rows[:, tile_start:tile_end]
            views.runs[lanes] = state.runs[:, tile_start:tile_end]
            views.samples[lanes] = state.samples_processed


# ----------------------------------------------------------------- gpu backend
@register_backend("gpu")
class GpuArrayBackend:
    """Lane-stacked state resident in device memory, advanced on the device.

    The wavefront is ``(lanes, reference)`` matrix operations, so the whole
    advance maps onto a GPU array library unchanged: this backend holds
    rows/runs/samples as device arrays and calls
    :func:`~repro.core.sdtw.sdtw_resume_batch_arrays` with the resolved
    :class:`~repro.core.array_module.ArrayModule` — CuPy when importable,
    Torch as a fallback (:func:`~repro.core.array_module.gpu_array_module`).
    Only the ragged query chunks go up and the ``(lanes, n_blocks)``
    per-target cost/end reductions come back per round; the DP rows never
    leave the device. ``tile_columns`` bounds the per-advance working set by
    running the exact halo-tiled advance tile by tile — device-memory
    micro-batching over the same interface the in-process backend tiles
    with.

    The registry entry always exists so configs naming ``"gpu"`` validate
    everywhere; construction without a GPU array library raises a
    :class:`RuntimeError` with an install hint. ``array_module`` overrides
    the resolution — an :class:`ArrayModule`, or a registered name;
    ``array_module="numpy"`` runs this exact code path on host arrays,
    which is how the test suite covers the backend bit-for-bit on machines
    (and CI runners) without a GPU.
    """

    backend_name = "gpu"
    tracer: Tracer = NULL_TRACER

    def __init__(
        self,
        reference: np.ndarray,
        config: Optional[SDTWConfig] = None,
        capacity: int = 8,
        block_starts: Optional[np.ndarray] = None,
        tile_columns: Optional[int] = None,
        array_module: Union[None, str, ArrayModule] = None,
    ) -> None:
        self.config = config if config is not None else SDTWConfig()
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if tile_columns is not None and tile_columns <= 0:
            raise ValueError("tile_columns must be positive")
        if array_module is None:
            xp = gpu_array_module(required=True)
        elif isinstance(array_module, str):
            xp = get_array_module(array_module)
        else:
            xp = array_module
        self.xp = xp
        host_reference = np.asarray(
            reference, dtype=np.int64 if self.config.quantize else np.float64
        )
        self.block_starts = normalize_block_starts(block_starts, host_reference.size)
        self.tile_columns = None if tile_columns is None else int(tile_columns)
        self._reference_length = int(host_reference.size)
        self._rows_dtype = xp.int64 if self.config.quantize else xp.float64
        self.reference_values = xp.asarray(host_reference, dtype=self._rows_dtype)
        self._rows = xp.zeros((capacity, self._reference_length), dtype=self._rows_dtype)
        self._runs = xp.ones((capacity, self._reference_length), dtype=xp.int64)
        self._samples = xp.zeros(capacity, dtype=xp.int64)
        self.stats = AdvanceStats()
        self._closed = False

    # ----------------------------------------------------------- bookkeeping
    @property
    def capacity(self) -> int:
        return int(self._rows.shape[0])

    @property
    def reference_length(self) -> int:
        return self._reference_length

    @property
    def n_blocks(self) -> int:
        return int(self.block_starts.size)

    def _device_lanes(self, lanes: np.ndarray):
        return self.xp.asarray([int(lane) for lane in np.asarray(lanes).ravel()], dtype=self.xp.intp)

    def _device_sync(self) -> None:
        """Drain queued device work so span boundaries measure real time.

        GPU array libraries enqueue asynchronously, so without a sync the
        wavefront span would close after *launching* the kernels, not after
        they ran. Only called when tracing (a sync changes timing, never
        results); a no-op for host array modules.
        """
        cuda = getattr(getattr(self.xp, "module", None), "cuda", None)
        if cuda is None:  # numpy or another host module
            return
        if hasattr(cuda, "synchronize"):  # torch
            if getattr(cuda, "is_available", lambda: False)():
                cuda.synchronize()
        elif hasattr(cuda, "Stream"):  # cupy
            cuda.Stream.null.synchronize()

    # ------------------------------------------------------------- lifecycle
    def allocate(self, min_capacity: int) -> None:
        if self._closed:
            raise RuntimeError("backend is closed")
        xp = self.xp
        old_capacity = self.capacity
        if min_capacity <= old_capacity:
            return
        rows = xp.zeros((min_capacity, self._reference_length), dtype=self._rows_dtype)
        runs = xp.ones((min_capacity, self._reference_length), dtype=xp.int64)
        samples = xp.zeros(min_capacity, dtype=xp.int64)
        rows[:old_capacity] = self._rows
        runs[:old_capacity] = self._runs
        samples[:old_capacity] = self._samples
        self._rows, self._runs, self._samples = rows, runs, samples

    def reset(self, lanes: np.ndarray) -> None:
        if self._closed:
            raise RuntimeError("backend is closed")
        index = self._device_lanes(lanes)
        self._rows[index] = 0
        self._runs[index] = 1
        self._samples[index] = 0

    def advance(
        self,
        lanes: np.ndarray,
        queries: Sequence[np.ndarray],
        prune_bounds: Optional[np.ndarray] = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        if self._closed:
            raise RuntimeError("backend is closed")
        xp = self.xp
        tracer = self.tracer
        trace = tracer.enabled
        with tracer.span("backend.advance", backend="gpu", n_lanes=int(np.size(lanes))):
            with tracer.span("backend.upload"):
                index = self._device_lanes(lanes)
                device_queries = [
                    xp.asarray(query, dtype=self._rows_dtype) for query in queries
                ]
                if trace:
                    self._device_sync()
            with tracer.span("backend.wavefront"):
                rows, runs, samples = sdtw_resume_batch_arrays(
                    device_queries,
                    self.reference_values,
                    self.config,
                    self._rows[index],
                    self._runs[index],
                    self._samples[index],
                    track_runs=False,
                    block_starts=self.block_starts,
                    tile_columns=self.tile_columns,
                    prune_bounds=prune_bounds,
                    stats=self.stats,
                    xp=xp,
                )
                if trace:
                    self._device_sync()
            with tracer.span("backend.scatter"):
                self._rows[index] = rows
                self._runs[index] = runs
                self._samples[index] = samples
            with tracer.span("backend.reduce"):
                costs, ends = reduce_block_minima(rows, self.block_starts, xp=xp)
                if trace:
                    self._device_sync()
            with tracer.span("backend.download"):
                return xp.to_numpy(costs), xp.to_numpy(ends)

    def gather(self, lanes: np.ndarray) -> BatchSDTWState:
        if self._closed:
            raise RuntimeError("backend is closed")
        xp = self.xp
        index = self._device_lanes(lanes)
        return BatchSDTWState(
            rows=xp.to_numpy(self._rows[index]),
            runs=xp.to_numpy(self._runs[index]),
            samples_processed=xp.to_numpy(self._samples[index]),
        )

    def scatter(self, lanes: np.ndarray, state: BatchSDTWState) -> None:
        if self._closed:
            raise RuntimeError("backend is closed")
        xp = self.xp
        index = self._device_lanes(lanes)
        self._rows[index] = xp.asarray(state.rows, dtype=self._rows_dtype)
        self._runs[index] = xp.asarray(state.runs, dtype=xp.int64)
        self._samples[index] = xp.asarray(state.samples_processed, dtype=xp.int64)

    def close(self) -> None:
        """Release the device allocations. Idempotent."""
        if self._closed:
            return
        self._closed = True
        self._rows = self._runs = self._samples = None
        self.reference_values = None


# Registers the "native" backend; imported last because the module subclasses
# NumpyBackend. A plain module import tolerates either import order.
import repro.batch.native  # noqa: E402,F401
