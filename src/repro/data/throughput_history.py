"""Nanopore sequencing throughput growth (paper Figure 6).

Figure 6 motivates the accelerator: per-device sequencing throughput has
grown exponentially (MinION flow cell improvements, GridION, PromethION, and
ONT's announced 16x/100x prototypes), so a Read Until classifier must have
large throughput headroom to stay useful.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np


@dataclass(frozen=True)
class SequencerRelease:
    """One device/chemistry release and its approximate aggregate throughput."""

    name: str
    year: float
    bases_per_second: float

    def __post_init__(self) -> None:
        if self.bases_per_second <= 0:
            raise ValueError("bases_per_second must be positive")


SEQUENCER_RELEASES: Tuple[SequencerRelease, ...] = (
    SequencerRelease("MinION R6", 2014.5, 7_000),
    SequencerRelease("MinION R7", 2015.0, 20_000),
    SequencerRelease("MinION R9", 2016.0, 86_000),
    SequencerRelease("MinION R9.4", 2017.0, 160_000),
    SequencerRelease("MinION R9.4.1", 2018.0, 230_400),
    SequencerRelease("GridION", 2018.5, 1_152_000),
    SequencerRelease("PromethION 24", 2019.5, 5_500_000),
    SequencerRelease("Announced 16x MinION prototype", 2021.0, 3_686_400),
    SequencerRelease("Planned 100x flowcell", 2023.0, 23_040_000),
)


def throughput_history_table() -> List[Dict[str, object]]:
    """Figure 6 as rows sorted by year."""
    return [
        {"device": release.name, "year": release.year, "bases_per_second": release.bases_per_second}
        for release in sorted(SEQUENCER_RELEASES, key=lambda item: item.year)
    ]


def exponential_growth_rate() -> float:
    """Fitted yearly growth factor of sequencing throughput.

    A least-squares fit of log-throughput against year; the paper's point is
    that the factor is well above 1 (exponential growth).
    """
    years = np.array([release.year for release in SEQUENCER_RELEASES])
    log_throughput = np.log([release.bases_per_second for release in SEQUENCER_RELEASES])
    slope, _ = np.polyfit(years, log_throughput, deg=1)
    return float(np.exp(slope))


def projected_throughput(year: float) -> float:
    """Throughput projected from the exponential fit (bases/s)."""
    years = np.array([release.year for release in SEQUENCER_RELEASES])
    log_throughput = np.log([release.bases_per_second for release in SEQUENCER_RELEASES])
    slope, intercept = np.polyfit(years, log_throughput, deg=1)
    return float(np.exp(slope * year + intercept))
