"""Static catalogs backing the paper's context tables and figures."""

from repro.data.tests_catalog import DIAGNOSTIC_TESTS, DiagnosticTest, tests_table
from repro.data.testing_history import US_TESTING_HISTORY, testing_history_table
from repro.data.throughput_history import SEQUENCER_RELEASES, throughput_history_table

__all__ = [
    "DIAGNOSTIC_TESTS",
    "DiagnosticTest",
    "SEQUENCER_RELEASES",
    "US_TESTING_HISTORY",
    "testing_history_table",
    "tests_table",
    "throughput_history_table",
]
