"""US COVID-19 testing progression (paper Figure 2).

Figure 2 shows daily COVID-19 tests performed in the United States ramping up
over months in 2020 — the motivation for a virus detector that can be
deployed and reprogrammed ahead of an outbreak. The monthly series here is a
coarse digitization of the public Our-World-in-Data series the paper cites.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple


@dataclass(frozen=True)
class TestingMonth:
    """Approximate daily tests performed during one month of 2020."""

    month: str
    daily_tests: int

    def __post_init__(self) -> None:
        if self.daily_tests < 0:
            raise ValueError("daily_tests must be non-negative")


US_TESTING_HISTORY: Tuple[TestingMonth, ...] = (
    TestingMonth("2020-01", 0),
    TestingMonth("2020-02", 1_000),
    TestingMonth("2020-03", 65_000),
    TestingMonth("2020-04", 220_000),
    TestingMonth("2020-05", 400_000),
    TestingMonth("2020-06", 550_000),
    TestingMonth("2020-07", 780_000),
    TestingMonth("2020-08", 730_000),
    TestingMonth("2020-09", 900_000),
    TestingMonth("2020-10", 1_100_000),
    TestingMonth("2020-11", 1_500_000),
    TestingMonth("2020-12", 1_900_000),
)


def testing_history_table() -> List[Dict[str, object]]:
    """Figure 2 as rows."""
    return [
        {"month": entry.month, "daily_tests": entry.daily_tests} for entry in US_TESTING_HISTORY
    ]


def months_to_reach(daily_tests: int) -> int:
    """Months from the genome's publication until the given daily test volume.

    Quantifies the deployment lag the paper argues a programmable detector
    would remove.
    """
    if daily_tests <= 0:
        return 0
    for index, entry in enumerate(US_TESTING_HISTORY):
        if entry.daily_tests >= daily_tests:
            return index
    return len(US_TESTING_HISTORY)
