"""Catalog of SARS-CoV-2 diagnostic tests (paper Table 1).

Table 1 compares antigen tests, non-sequencing molecular tests and
ONT-sequencing-based tests on what they diagnose, programmability, time and
cost. The rows are recorded verbatim so the Table 1 bench regenerates the
comparison and the examples can explain where the proposed detector sits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple


@dataclass(frozen=True)
class DiagnosticTest:
    """One diagnostic-test row of Table 1."""

    name: str
    category: str
    diagnostic_output: str
    programmable: bool
    time_minutes: Optional[float]
    cost_usd: Optional[float]

    def __post_init__(self) -> None:
        if self.time_minutes is not None and self.time_minutes <= 0:
            raise ValueError("time_minutes must be positive when provided")
        if self.cost_usd is not None and self.cost_usd < 0:
            raise ValueError("cost_usd must be non-negative when provided")


DIAGNOSTIC_TESTS: Tuple[DiagnosticTest, ...] = (
    DiagnosticTest("Antigen paper test", "antigen", "presence", False, 15, 5),
    DiagnosticTest("RT-LAMP", "molecular", "presence", False, 60, 15),
    DiagnosticTest("RT-PCR", "molecular", "presence", False, 180, 10),
    DiagnosticTest("ARTIC amplicon sequencing", "sequencing", "98 targets", False, 305, 100),
    DiagnosticTest("LamPORE", "sequencing", "3 targets", False, 65, None),
    DiagnosticTest("Direct RNA sequencing (1% virus)", "sequencing", "whole genome", True, 240, 110),
    DiagnosticTest("Direct RNA sequencing (0.1% virus)", "sequencing", "whole genome", True, 1206, 190),
    DiagnosticTest("Direct DNA sequencing (1% virus)", "sequencing", "whole genome", True, 320, 105),
    DiagnosticTest("Direct DNA sequencing (0.1% virus)", "sequencing", "whole genome", True, 470, 120),
)


def tests_table() -> List[Dict[str, object]]:
    """Table 1 as printable rows."""
    return [
        {
            "test": test.name,
            "category": test.category,
            "diagnostic": test.diagnostic_output,
            "programmable": test.programmable,
            "time_minutes": test.time_minutes,
            "cost_usd": test.cost_usd,
        }
        for test in DIAGNOSTIC_TESTS
    ]


def programmable_tests() -> List[DiagnosticTest]:
    """Only the tests that can be retargeted to a novel virus without new reagents."""
    return [test for test in DIAGNOSTIC_TESTS if test.programmable]


def whole_genome_tests() -> List[DiagnosticTest]:
    """Tests that recover the whole viral genome (needed for strain surveillance)."""
    return [test for test in DIAGNOSTIC_TESTS if test.diagnostic_output == "whole genome"]
