"""ASIC area/power model (paper Table 4).

The paper synthesizes SquiggleFilter for 28 nm TSMC HPC at 2.5 GHz and
reports per-element area and power. Re-synthesis is impossible offline, so
this module encodes the per-element constants and the composition rules
(2000 PEs + normalizer + query buffers + reference buffer per tile; five
tiles per chip) so that Table 4 can be regenerated and the model can answer
"what if" questions (different PE counts, tile counts or buffer sizes) for
the design-space example.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List


@dataclass(frozen=True)
class TechnologyConstants:
    """Per-element synthesis results at 28 nm TSMC HPC, 2.5 GHz."""

    clock_ghz: float = 2.5
    pe_area_mm2: float = 0.001203
    pe_power_w: float = 0.00192
    # Synthesized tile power is below n_pes * pe_power because not every PE
    # toggles every cycle; the utilization factor calibrates the tile power to
    # the reported 2.78 W.
    pe_power_utilization: float = 0.7234
    tile_wiring_overhead_mm2: float = 0.017
    normalizer_area_mm2: float = 0.014
    normalizer_power_w: float = 0.045
    query_buffer_area_mm2: float = 0.023
    query_buffer_power_w: float = 0.009
    reference_buffer_area_mm2: float = 0.185
    reference_buffer_power_w: float = 0.028
    reference_buffer_kb: float = 100.0
    query_buffer_kb: float = 2.5

    def __post_init__(self) -> None:
        if self.clock_ghz <= 0:
            raise ValueError("clock_ghz must be positive")
        for name in (
            "pe_area_mm2",
            "pe_power_w",
            "pe_power_utilization",
            "normalizer_area_mm2",
            "normalizer_power_w",
            "query_buffer_area_mm2",
            "query_buffer_power_w",
            "reference_buffer_area_mm2",
            "reference_buffer_power_w",
        ):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")


@dataclass
class AsicModel:
    """Composable area/power model of the SquiggleFilter ASIC."""

    n_pes_per_tile: int = 2000
    n_tiles: int = 5
    technology: TechnologyConstants = field(default_factory=TechnologyConstants)

    def __post_init__(self) -> None:
        if self.n_pes_per_tile <= 0:
            raise ValueError("n_pes_per_tile must be positive")
        if self.n_tiles <= 0:
            raise ValueError("n_tiles must be positive")

    # ----------------------------------------------------------------- per tile
    @property
    def pe_array_area_mm2(self) -> float:
        return self.n_pes_per_tile * self.technology.pe_area_mm2

    @property
    def tile_area_mm2(self) -> float:
        """PE array plus intra-tile wiring (the paper's "Tile (1x2000 PEs)" row)."""
        return self.pe_array_area_mm2 + self.technology.tile_wiring_overhead_mm2

    @property
    def tile_power_w(self) -> float:
        return (
            self.n_pes_per_tile
            * self.technology.pe_power_w
            * self.technology.pe_power_utilization
        )

    @property
    def single_tile_asic_area_mm2(self) -> float:
        """One complete tile with its normalizer and buffers."""
        tech = self.technology
        return (
            self.tile_area_mm2
            + tech.normalizer_area_mm2
            + tech.query_buffer_area_mm2
            + tech.reference_buffer_area_mm2
        )

    @property
    def single_tile_asic_power_w(self) -> float:
        tech = self.technology
        return (
            self.tile_power_w
            + tech.normalizer_power_w
            + tech.query_buffer_power_w
            + tech.reference_buffer_power_w
        )

    # ------------------------------------------------------------------- chip
    @property
    def total_area_mm2(self) -> float:
        return self.n_tiles * self.single_tile_asic_area_mm2

    @property
    def total_power_w(self) -> float:
        return self.n_tiles * self.single_tile_asic_power_w

    def power_gated_power_w(self, active_tiles: int) -> float:
        """Chip power with only ``active_tiles`` tiles powered (Section 5.1)."""
        if not 0 <= active_tiles <= self.n_tiles:
            raise ValueError(f"active_tiles must be within [0, {self.n_tiles}]")
        return active_tiles * self.single_tile_asic_power_w

    def max_reference_samples(self, bytes_per_sample: int = 2) -> int:
        """Largest reference squiggle the per-tile buffer can hold."""
        if bytes_per_sample <= 0:
            raise ValueError("bytes_per_sample must be positive")
        return int(self.technology.reference_buffer_kb * 1024 // bytes_per_sample)


def synthesis_table(model: AsicModel = AsicModel()) -> List[Dict[str, object]]:
    """Regenerate Table 4 rows from the model."""
    tech = model.technology
    return [
        {"element": "Normalizer", "area_mm2": tech.normalizer_area_mm2, "power_w": tech.normalizer_power_w},
        {"element": "Processing Element", "area_mm2": tech.pe_area_mm2, "power_w": tech.pe_power_w},
        {"element": f"Tile (1x{model.n_pes_per_tile} PEs)", "area_mm2": model.tile_area_mm2, "power_w": model.tile_power_w},
        {"element": "Query buffer", "area_mm2": tech.query_buffer_area_mm2, "power_w": tech.query_buffer_power_w},
        {"element": "Reference buffer", "area_mm2": tech.reference_buffer_area_mm2, "power_w": tech.reference_buffer_power_w},
        {"element": "Complete 1-Tile ASIC", "area_mm2": model.single_tile_asic_area_mm2, "power_w": model.single_tile_asic_power_w},
        {"element": f"Complete {model.n_tiles}-Tile ASIC", "area_mm2": model.total_area_mm2, "power_w": model.total_power_w},
    ]
