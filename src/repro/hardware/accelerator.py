"""Top-level SquiggleFilter accelerator: five tiles behind a read dispatcher.

Ties together the reference squiggle, the hardware normalizer, the systolic
tiles and the ASIC model: reads are assigned to free tiles, classified
against the on-chip reference, and accounted for in cycles so aggregate
latency/throughput match the performance model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.filter import FilterDecision
from repro.core.reference import ReferenceSquiggle
from repro.hardware.asic import AsicModel
from repro.hardware.normalizer import HardwareNormalizer
from repro.hardware.performance import classification_cycles
from repro.hardware.systolic import SystolicTile


@dataclass
class AcceleratorConfig:
    """Provisioning of the accelerator."""

    n_tiles: int = 5
    n_pes_per_tile: int = 2000
    match_bonus: int = 10
    match_bonus_cap: int = 10
    clock_ghz: float = 2.5

    def __post_init__(self) -> None:
        if self.n_tiles <= 0:
            raise ValueError("n_tiles must be positive")
        if self.n_pes_per_tile <= 0:
            raise ValueError("n_pes_per_tile must be positive")
        if self.clock_ghz <= 0:
            raise ValueError("clock_ghz must be positive")


@dataclass
class AcceleratorStats:
    """Aggregate activity counters for one batch of classifications."""

    reads_classified: int = 0
    reads_ejected: int = 0
    total_cycles: int = 0
    per_tile_reads: Dict[int, int] = field(default_factory=dict)

    def record(self, tile_index: int, cycles: int, ejected: bool) -> None:
        self.reads_classified += 1
        self.total_cycles += cycles
        if ejected:
            self.reads_ejected += 1
        self.per_tile_reads[tile_index] = self.per_tile_reads.get(tile_index, 0) + 1

    def busy_seconds(self, clock_ghz: float, n_tiles: int) -> float:
        """Wall-clock compute time assuming reads spread across tiles."""
        if self.total_cycles == 0:
            return 0.0
        return self.total_cycles / (clock_ghz * 1e9) / max(n_tiles, 1)


class SquiggleFilterAccelerator:
    """Functional model of the full accelerator."""

    def __init__(
        self,
        reference: ReferenceSquiggle,
        threshold: Optional[float] = None,
        config: Optional[AcceleratorConfig] = None,
        asic: Optional[AsicModel] = None,
    ) -> None:
        self.reference = reference
        self.threshold = threshold
        self.config = config if config is not None else AcceleratorConfig()
        self.asic = asic if asic is not None else AsicModel(
            n_pes_per_tile=self.config.n_pes_per_tile, n_tiles=self.config.n_tiles
        )
        self.tiles = [
            SystolicTile(
                n_pes=self.config.n_pes_per_tile,
                match_bonus=self.config.match_bonus,
                match_bonus_cap=self.config.match_bonus_cap,
            )
            for _ in range(self.config.n_tiles)
        ]
        self.normalizer = HardwareNormalizer(chunk_samples=self.config.n_pes_per_tile)
        self.stats = AcceleratorStats()
        self._next_tile = 0
        if not self.tiles[0].reference_fits(reference.n_positions):
            raise ValueError(
                f"reference of {reference.n_positions} samples does not fit the "
                f"{self.tiles[0].reference_buffer_kb:.0f} KB per-tile reference buffer"
            )

    @property
    def n_tiles(self) -> int:
        return self.config.n_tiles

    def program_threshold(self, threshold: float) -> None:
        """Reprogram the ejection threshold (software-controlled, Section 5.2)."""
        self.threshold = float(threshold)

    def classify(self, raw_signal_pa: np.ndarray, prefix_samples: Optional[int] = None) -> FilterDecision:
        """Classify one read prefix, dispatching it to the next free tile."""
        if self.threshold is None:
            raise ValueError("no ejection threshold programmed; call program_threshold()")
        limit = prefix_samples if prefix_samples is not None else self.config.n_pes_per_tile
        prefix = np.asarray(raw_signal_pa, dtype=np.float64)[:limit]
        if prefix.size == 0:
            raise ValueError("cannot classify an empty signal")
        adc = self.normalizer.quantize_adc(prefix)
        quantized = self.normalizer.normalize_signal(adc)

        tile_index = self._next_tile
        self._next_tile = (self._next_tile + 1) % self.n_tiles
        tile = self.tiles[tile_index]
        result = tile.align(quantized, self.reference.quantized, threshold=self.threshold)
        cycles = classification_cycles(self.reference.n_positions, int(prefix.size))
        ejected = not bool(result.accept)
        self.stats.record(tile_index, cycles, ejected)
        return FilterDecision(
            accept=bool(result.accept),
            cost=result.cost,
            per_sample_cost=result.cost / max(int(prefix.size), 1),
            samples_used=int(prefix.size),
            threshold=float(self.threshold),
            end_position=result.end_position,
            stage=0,
        )

    def classify_batch(
        self, signals: Sequence[np.ndarray], prefix_samples: Optional[int] = None
    ) -> List[FilterDecision]:
        return [self.classify(signal, prefix_samples) for signal in signals]

    def calibrate_threshold(
        self,
        target_signals: Sequence[np.ndarray],
        nontarget_signals: Sequence[np.ndarray],
        prefix_samples: Optional[int] = None,
        quantile: float = 0.95,
    ) -> float:
        """Pick a threshold between the target and non-target cost distributions.

        The threshold is halfway between the ``quantile`` of the target costs
        and the ``1 - quantile`` of the non-target costs, computed on the
        hardware data path so it is directly programmable on the device.
        """
        if not 0.5 <= quantile < 1.0:
            raise ValueError("quantile must be in [0.5, 1)")
        previous_threshold = self.threshold
        self.threshold = float("inf")
        try:
            target_costs = [
                self.classify(signal, prefix_samples).cost for signal in target_signals
            ]
            nontarget_costs = [
                self.classify(signal, prefix_samples).cost for signal in nontarget_signals
            ]
        finally:
            self.threshold = previous_threshold
        high_target = float(np.quantile(target_costs, quantile))
        low_nontarget = float(np.quantile(nontarget_costs, 1.0 - quantile))
        threshold = (high_target + low_nontarget) / 2.0
        self.program_threshold(threshold)
        return threshold

    # ------------------------------------------------------------------ reporting
    def latency_ms(self, prefix_samples: Optional[int] = None) -> float:
        """Classification latency for the programmed reference."""
        query = prefix_samples if prefix_samples is not None else self.config.n_pes_per_tile
        cycles = classification_cycles(self.reference.n_positions, query)
        return cycles / (self.config.clock_ghz * 1e9) * 1e3

    def throughput_samples_per_s(self, prefix_samples: Optional[int] = None) -> float:
        """Aggregate classification throughput across all tiles."""
        query = prefix_samples if prefix_samples is not None else self.config.n_pes_per_tile
        latency_s = self.latency_ms(query) / 1e3
        return self.n_tiles * query / latency_s

    def area_mm2(self) -> float:
        return self.asic.total_area_mm2

    def power_w(self, active_tiles: Optional[int] = None) -> float:
        if active_tiles is None:
            return self.asic.total_power_w
        return self.asic.power_gated_power_w(active_tiles)
