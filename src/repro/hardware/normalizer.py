"""Hardware normalizer model (paper Section 5.3, Figure 15).

The normalizer is a streaming query pre-processor: it accumulates each
2000-sample chunk from the query buffer, computes the chunk's mean and Mean
Absolute Deviation with fixed-point arithmetic, then re-streams the samples
through mean-MAD normalization, outlier clipping to ``[-4, 4]`` and 8-bit
fixed-point rescaling before they are loaded into the PEs.

The model mirrors that two-pass structure (accumulate, then transform) and
uses the same fixed-point widths, so its output can be compared against the
floating-point :class:`repro.core.normalization.SignalNormalizer` in tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.core.normalization import NormalizationConfig


@dataclass
class NormalizerStats:
    """Fixed-point statistics computed for one chunk."""

    mean: float
    mad: float
    n_samples: int


class HardwareNormalizer:
    """Streaming mean-MAD normalizer with 10-bit inputs and 8-bit outputs."""

    def __init__(
        self,
        chunk_samples: int = 2000,
        adc_bits: int = 10,
        config: NormalizationConfig = NormalizationConfig(),
    ) -> None:
        if chunk_samples <= 0:
            raise ValueError("chunk_samples must be positive")
        if not 6 <= adc_bits <= 16:
            raise ValueError("adc_bits must be within [6, 16]")
        self.chunk_samples = chunk_samples
        self.adc_bits = adc_bits
        self.config = config
        self._buffer: List[int] = []
        self._outputs: List[int] = []
        self.last_stats: NormalizerStats = NormalizerStats(mean=0.0, mad=1.0, n_samples=0)

    @property
    def adc_max(self) -> int:
        return 2**self.adc_bits - 1

    def quantize_adc(self, current_pa: np.ndarray, pa_range: float = 200.0) -> np.ndarray:
        """Model the sequencer ADC: map picoamps onto the 10-bit input range."""
        scaled = np.asarray(current_pa, dtype=np.float64) / pa_range * self.adc_max
        return np.clip(np.rint(scaled), 0, self.adc_max).astype(np.int64)

    def push(self, sample: int) -> List[int]:
        """Stream in one ADC sample; returns normalized outputs when a chunk completes."""
        self._buffer.append(int(sample))
        if len(self._buffer) < self.chunk_samples:
            return []
        chunk = np.array(self._buffer, dtype=np.int64)
        self._buffer = []
        outputs = self._normalize_chunk(chunk)
        self._outputs.extend(outputs.tolist())
        return outputs.tolist()

    def flush(self) -> List[int]:
        """Normalize whatever partial chunk remains (end of a short read)."""
        if not self._buffer:
            return []
        chunk = np.array(self._buffer, dtype=np.int64)
        self._buffer = []
        outputs = self._normalize_chunk(chunk)
        self._outputs.extend(outputs.tolist())
        return outputs.tolist()

    def normalize_signal(self, adc_samples: np.ndarray) -> np.ndarray:
        """Normalize a whole signal chunk-by-chunk (the accelerator data path)."""
        self._buffer = []
        self._outputs = []
        for sample in np.asarray(adc_samples).tolist():
            self.push(int(sample))
        self.flush()
        return np.array(self._outputs, dtype=np.int64)

    # ----------------------------------------------------------------- internals
    def _normalize_chunk(self, chunk: np.ndarray) -> np.ndarray:
        n = chunk.size
        # Fixed-point mean and MAD: integer sums, then a single division each,
        # as the accumulate-and-divide datapath of Figure 15.
        mean = float(chunk.sum()) / n
        mad = float(np.abs(chunk - mean).sum()) / n
        if mad <= 0:
            mad = 1.0
        self.last_stats = NormalizerStats(mean=mean, mad=mad, n_samples=int(n))
        normalized = (chunk - mean) / mad
        clipped = np.clip(normalized, -self.config.clip, self.config.clip)
        quantized = np.rint(clipped * self.config.quantize_scale)
        limit = self.config.quantize_max
        return np.clip(quantized, -limit, limit).astype(np.int64)
