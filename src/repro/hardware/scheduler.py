"""Read-to-tile dispatch and occupancy modelling.

Section 5.1: "Each read is assigned to an available tile for classification",
and the tile count (5) is chosen so the accelerator keeps up with a future
100x-throughput sequencer. This module models that dispatch as a simple
queueing simulation: classification requests arrive as reads reach the
decision prefix on the sequencer, each occupies a tile for the classification
latency, and we measure tile utilization, queueing delay and the maximum
sequencer scale a given tile count sustains.

Arrivals come from either a synthetic rate (:meth:`TileScheduler.simulate`)
or a **real batch trace**: the per-round occupancy a
:class:`~repro.batch.BatchSDTWEngine` recorded while driving a Read Until
session, where every undecided channel requests classification at the same
instant of each polling round. :meth:`TileScheduler.simulate_batch_trace`
consumes the dense per-poll trace (idle polls as zeros);
:meth:`TileScheduler.simulate_engine_rounds` consumes the engine's sparse
:class:`~repro.batch.engine.BatchRound` records directly, where idle polls
are index gaps.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, List, Optional, Sequence

import numpy as np

from repro.basecall.performance import MINION_MAX_SAMPLES_PER_S
from repro.hardware.performance import accelerator_performance


@dataclass
class DispatchStats:
    """Outcome of one dispatch simulation."""

    n_requests: int
    simulated_seconds: float
    tile_busy_seconds: np.ndarray
    waiting_times_s: List[float] = field(default_factory=list)

    @property
    def mean_waiting_ms(self) -> float:
        if not self.waiting_times_s:
            return 0.0
        return float(np.mean(self.waiting_times_s) * 1e3)

    @property
    def max_waiting_ms(self) -> float:
        if not self.waiting_times_s:
            return 0.0
        return float(np.max(self.waiting_times_s) * 1e3)

    @property
    def utilization(self) -> np.ndarray:
        """Per-tile busy fraction."""
        if self.simulated_seconds <= 0:
            return np.zeros_like(self.tile_busy_seconds)
        return self.tile_busy_seconds / self.simulated_seconds

    @property
    def mean_utilization(self) -> float:
        return float(self.utilization.mean()) if self.tile_busy_seconds.size else 0.0


class TileScheduler:
    """Event-driven simulation of read classification requests over N tiles."""

    def __init__(
        self,
        n_tiles: int = 5,
        classification_latency_s: float = 2.7e-5,
        seed: Optional[int] = None,
    ) -> None:
        if n_tiles <= 0:
            raise ValueError("n_tiles must be positive")
        if classification_latency_s <= 0:
            raise ValueError("classification_latency_s must be positive")
        self.n_tiles = n_tiles
        self.classification_latency_s = classification_latency_s
        self._rng = np.random.default_rng(seed)

    def simulate(
        self,
        request_rate_per_s: float,
        duration_s: float = 10.0,
        poisson: bool = True,
    ) -> DispatchStats:
        """Simulate ``duration_s`` of classification requests at the given rate.

        Requests are served FIFO by the first free tile; a request that finds
        all tiles busy waits (in reality the squiggles simply sit in DRAM a
        little longer).
        """
        if request_rate_per_s <= 0:
            raise ValueError("request_rate_per_s must be positive")
        if duration_s <= 0:
            raise ValueError("duration_s must be positive")

        if poisson:
            inter_arrival = self._rng.exponential(
                1.0 / request_rate_per_s, size=int(request_rate_per_s * duration_s * 1.2) + 1
            )
            arrivals = np.cumsum(inter_arrival)
        else:
            arrivals = np.arange(0.0, duration_s, 1.0 / request_rate_per_s)
        arrivals = arrivals[arrivals < duration_s]
        return self._serve(arrivals, duration_s)

    def simulate_batch_trace(
        self,
        occupancy: Sequence[int],
        round_duration_s: float,
    ) -> DispatchStats:
        """Replay a batched-execution occupancy trace against the tiles.

        ``occupancy`` is the per-round active-lane count a
        :class:`~repro.batch.BatchSDTWEngine` recorded during a real Read
        Until session (``PipelineRunResult.streaming["batch_occupancy"]``):
        round ``r``'s lanes all request classification simultaneously at
        ``r * round_duration_s``, the bursty arrival pattern lockstep
        execution actually produces — rather than the smooth synthetic
        Poisson stream :meth:`simulate` assumes.
        """
        counts = np.asarray(occupancy, dtype=np.int64)
        if counts.ndim != 1:
            raise ValueError("occupancy must be a 1-D sequence of round counts")
        if counts.size and counts.min() < 0:
            raise ValueError("occupancy counts must be non-negative")
        if round_duration_s <= 0:
            raise ValueError("round_duration_s must be positive")
        arrivals = np.repeat(np.arange(counts.size) * round_duration_s, counts)
        duration_s = max(counts.size * round_duration_s, round_duration_s)
        return self._serve(arrivals, float(duration_s))

    def simulate_engine_rounds(
        self,
        rounds: Sequence[Any],
        round_duration_s: float,
        n_polls: Optional[int] = None,
    ) -> DispatchStats:
        """Replay a batch engine's sparse round records against the tiles.

        ``rounds`` are :class:`~repro.batch.engine.BatchRound` records (or any
        objects with ``index`` and ``n_lanes``): the engine only records
        *busy* polls, stamped with their poll index, so idle polls appear as
        index gaps rather than zero-lane entries. Each round's lanes request
        classification simultaneously at ``round.index * round_duration_s``
        — identical arrivals to :meth:`simulate_batch_trace` on the dense
        ``occupancy_trace``, without materializing the idle zeros. ``n_polls``
        (``BatchSDTWEngine.n_polls``) extends the simulated duration over
        trailing idle polls; by default the timeline ends after the last busy
        round.
        """
        if round_duration_s <= 0:
            raise ValueError("round_duration_s must be positive")
        indices = np.asarray([entry.index for entry in rounds], dtype=np.int64)
        counts = np.asarray([entry.n_lanes for entry in rounds], dtype=np.int64)
        if counts.size and counts.min() < 0:
            raise ValueError("round lane counts must be non-negative")
        if indices.size and (indices.min() < 0 or np.any(np.diff(indices) <= 0)):
            raise ValueError("round indices must be non-negative and strictly increasing")
        total_polls = int(indices[-1]) + 1 if indices.size else 0
        if n_polls is not None:
            if n_polls < total_polls:
                raise ValueError(f"n_polls={n_polls} is before the last recorded round")
            total_polls = int(n_polls)
        arrivals = np.repeat(indices * round_duration_s, counts)
        duration_s = max(total_polls * round_duration_s, round_duration_s)
        return self._serve(arrivals, float(duration_s))

    def _serve(self, arrivals: np.ndarray, duration_s: float) -> DispatchStats:
        """FIFO-serve a sorted arrival stream with the first free tile."""
        busy = np.zeros(self.n_tiles)
        waiting: List[float] = []
        heap = [(0.0, tile) for tile in range(self.n_tiles)]
        heapq.heapify(heap)
        for arrival in arrivals:
            free_at, tile = heapq.heappop(heap)
            start = max(arrival, free_at)
            waiting.append(start - arrival)
            end = start + self.classification_latency_s
            busy[tile] += self.classification_latency_s
            heapq.heappush(heap, (end, tile))
        return DispatchStats(
            n_requests=int(arrivals.size),
            simulated_seconds=float(duration_s),
            tile_busy_seconds=busy,
            waiting_times_s=waiting,
        )

    def max_sustainable_request_rate(self) -> float:
        """Requests per second the tiles can absorb at 100 % utilization."""
        return self.n_tiles / self.classification_latency_s


def request_rate_for_sequencer(
    sequencer_scale: float = 1.0,
    decision_prefix_samples: int = 2000,
    sequencer_samples_per_s: float = MINION_MAX_SAMPLES_PER_S,
) -> float:
    """Classification requests per second produced by a (scaled) sequencer.

    Every pore produces one decision request per ``decision_prefix_samples``
    of signal, so the aggregate request rate is the aggregate sample rate
    divided by the prefix length — pessimistically assuming every read is
    ejected right after its decision (ejected reads free the pore quickly, so
    this is the worst case for the accelerator).
    """
    if sequencer_scale <= 0:
        raise ValueError("sequencer_scale must be positive")
    if decision_prefix_samples <= 0:
        raise ValueError("decision_prefix_samples must be positive")
    return sequencer_scale * sequencer_samples_per_s / decision_prefix_samples


def required_tiles(
    sequencer_scale: float,
    genome_length_bases: int = 30_000,
    decision_prefix_samples: int = 2000,
    utilization_target: float = 0.8,
) -> int:
    """Smallest tile count that serves a scaled sequencer below a utilization target."""
    if not 0.0 < utilization_target <= 1.0:
        raise ValueError("utilization_target must be in (0, 1]")
    performance = accelerator_performance(genome_length_bases, query_samples=decision_prefix_samples)
    rate = request_rate_for_sequencer(sequencer_scale, decision_prefix_samples)
    per_tile_capacity = utilization_target / performance.latency_s
    return max(1, int(np.ceil(rate / per_tile_capacity)))
