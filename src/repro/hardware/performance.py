"""Accelerator latency/throughput model (paper Section 7.1/7.2, Figure 16).

The accelerator classifies a read prefix in ``reference_length + 3 x
query_length`` cycles: the query chunk is loaded and normalized, the systolic
pipeline fills, the reference streams through, and the array drains. At
2.5 GHz this gives the paper's 0.027 ms (SARS-CoV-2) and 0.043 ms (lambda
phage) classification latencies and the corresponding per-tile throughputs.
This module provides those calculations plus the comparisons against the
GPU basecalling pipeline used in Figure 16 and the scalability analysis of
Figure 21.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.basecall.performance import (
    BASECALLER_PERFORMANCE,
    MINION_MAX_BASES_PER_S,
    MINION_MAX_SAMPLES_PER_S,
    BasecallerPerformance,
)
from repro.hardware.asic import AsicModel

# Samples the MinION records per translocated base (paper Section 3.1).
SAMPLES_PER_BASE = 10.0


def classification_cycles(reference_samples: int, query_samples: int = 2000) -> int:
    """Cycles to classify one read prefix.

    ``reference_samples`` covers both strands of the target genome (the
    filter aligns against forward + reverse complement).
    """
    if reference_samples <= 0 or query_samples <= 0:
        raise ValueError("reference_samples and query_samples must be positive")
    return int(reference_samples + 3 * query_samples)


@dataclass
class AcceleratorPerformance:
    """Latency/throughput of the accelerator for one target genome."""

    reference_samples: int
    query_samples: int
    clock_ghz: float
    n_tiles: int

    @property
    def cycles(self) -> int:
        return classification_cycles(self.reference_samples, self.query_samples)

    @property
    def latency_s(self) -> float:
        return self.cycles / (self.clock_ghz * 1e9)

    @property
    def latency_ms(self) -> float:
        return self.latency_s * 1e3

    @property
    def tile_throughput_samples_per_s(self) -> float:
        """Query samples classified per second by one tile."""
        return self.query_samples / self.latency_s

    @property
    def total_throughput_samples_per_s(self) -> float:
        return self.n_tiles * self.tile_throughput_samples_per_s

    @property
    def total_throughput_bases_per_s(self) -> float:
        return self.total_throughput_samples_per_s / SAMPLES_PER_BASE

    @property
    def minion_headroom(self) -> float:
        """How many times the MinION's maximum output the accelerator absorbs."""
        return self.total_throughput_samples_per_s / MINION_MAX_SAMPLES_PER_S


def accelerator_performance(
    genome_length_bases: int,
    both_strands: bool = True,
    query_samples: int = 2000,
    model: Optional[AsicModel] = None,
) -> AcceleratorPerformance:
    """Performance of the provisioned accelerator for one target genome."""
    if genome_length_bases <= 0:
        raise ValueError("genome_length_bases must be positive")
    asic = model if model is not None else AsicModel()
    reference_samples = genome_length_bases * (2 if both_strands else 1)
    return AcceleratorPerformance(
        reference_samples=reference_samples,
        query_samples=query_samples,
        clock_ghz=asic.technology.clock_ghz,
        n_tiles=asic.n_tiles,
    )


def latency_comparison(
    genome_length_bases: int = 30_000,
    query_samples: int = 2000,
) -> List[Dict[str, object]]:
    """Figure 16a: per-decision latency of each classifier option."""
    accelerator = accelerator_performance(genome_length_bases, query_samples=query_samples)
    rows: List[Dict[str, object]] = [
        {
            "classifier": f"{record.basecaller}@{record.device}",
            "latency_ms": record.read_until_latency_ms,
            "extra_bases_sequenced": record.read_until_latency_ms / 1000.0 * 450.0,
        }
        for record in BASECALLER_PERFORMANCE
    ]
    rows.append(
        {
            "classifier": "squigglefilter",
            "latency_ms": accelerator.latency_ms,
            "extra_bases_sequenced": accelerator.latency_ms / 1000.0 * 450.0,
        }
    )
    return rows


def throughput_comparison(
    genome_length_bases: int = 30_000,
    query_samples: int = 2000,
) -> List[Dict[str, object]]:
    """Figure 16b: sustained classification throughput versus sequencer output."""
    accelerator = accelerator_performance(genome_length_bases, query_samples=query_samples)
    rows: List[Dict[str, object]] = []
    for record in BASECALLER_PERFORMANCE:
        rows.append(
            {
                "classifier": f"{record.basecaller}@{record.device}",
                "throughput_samples_per_s": record.read_until_samples_per_s,
                "minion_fraction": record.minion_fraction,
                "keeps_up_with_minion": record.supports_full_read_until(),
            }
        )
    rows.append(
        {
            "classifier": "squigglefilter",
            "throughput_samples_per_s": accelerator.total_throughput_samples_per_s,
            "minion_fraction": accelerator.total_throughput_bases_per_s / MINION_MAX_BASES_PER_S,
            "keeps_up_with_minion": True,
        }
    )
    return rows


def speedup_over_baseline(
    genome_length_bases: int = 30_000,
    baseline: Optional[BasecallerPerformance] = None,
) -> float:
    """Headline throughput ratio (paper abstract: 274x over the edge GPU pipeline)."""
    accelerator = accelerator_performance(genome_length_bases)
    if baseline is None:
        baseline = next(
            record
            for record in BASECALLER_PERFORMANCE
            if record.basecaller == "guppy_lite" and record.device == "jetson_xavier"
        )
    return accelerator.total_throughput_samples_per_s / baseline.read_until_samples_per_s
