"""SquiggleFilter hardware model: PEs, tiles, normalizer, ASIC and performance."""

from repro.hardware.accelerator import AcceleratorConfig, SquiggleFilterAccelerator
from repro.hardware.asic import AsicModel, TechnologyConstants, synthesis_table
from repro.hardware.devices import DEVICES, DeviceSpec, device_table
from repro.hardware.energy import accelerator_energy, energy_comparison
from repro.hardware.normalizer import HardwareNormalizer
from repro.hardware.pe import PEState, ProcessingElement
from repro.hardware.scheduler import TileScheduler, request_rate_for_sequencer, required_tiles
from repro.hardware.verification import HardwareEquivalenceChecker
from repro.hardware.performance import (
    AcceleratorPerformance,
    accelerator_performance,
    classification_cycles,
    latency_comparison,
    throughput_comparison,
)
from repro.hardware.systolic import SystolicTile, TileResult

__all__ = [
    "AcceleratorConfig",
    "AcceleratorPerformance",
    "AsicModel",
    "DEVICES",
    "DeviceSpec",
    "HardwareEquivalenceChecker",
    "HardwareNormalizer",
    "PEState",
    "ProcessingElement",
    "SquiggleFilterAccelerator",
    "SystolicTile",
    "TileScheduler",
    "TechnologyConstants",
    "TileResult",
    "accelerator_energy",
    "accelerator_performance",
    "classification_cycles",
    "device_table",
    "energy_comparison",
    "latency_comparison",
    "request_rate_for_sequencer",
    "required_tiles",
    "synthesis_table",
    "throughput_comparison",
]
