"""Energy-per-decision model.

The paper's headline efficiency claim is stated in power ("14.3 W ... while
consuming half the power" of the edge GPU) but the quantity a battery-powered
portable detector cares about is energy per classified read: power multiplied
by the time each decision occupies the engine. This module combines the ASIC
power model with the latency/throughput models to compare Joules per decision
across SquiggleFilter and the GPU basecalling options.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.basecall.performance import BASECALLER_PERFORMANCE, BasecallerPerformance
from repro.hardware.asic import AsicModel
from repro.hardware.performance import SAMPLES_PER_BASE, accelerator_performance


@dataclass(frozen=True)
class EnergyEstimate:
    """Energy accounting for one classifier option."""

    classifier: str
    power_w: float
    decisions_per_second: float
    energy_per_decision_mj: float

    def __post_init__(self) -> None:
        if self.power_w <= 0:
            raise ValueError("power_w must be positive")
        if self.decisions_per_second <= 0:
            raise ValueError("decisions_per_second must be positive")


def accelerator_energy(
    genome_length_bases: int = 30_000,
    query_samples: int = 2000,
    model: Optional[AsicModel] = None,
    active_tiles: Optional[int] = None,
) -> EnergyEstimate:
    """Energy per classification on the SquiggleFilter ASIC.

    Throughput-based accounting: with all tiles busy, the chip classifies
    ``n_tiles`` reads every ``latency`` seconds at its (optionally
    power-gated) total power.
    """
    asic = model if model is not None else AsicModel()
    performance = accelerator_performance(
        genome_length_bases, query_samples=query_samples, model=asic
    )
    tiles = asic.n_tiles if active_tiles is None else active_tiles
    power = asic.power_gated_power_w(tiles)
    decisions_per_second = tiles / performance.latency_s
    return EnergyEstimate(
        classifier="squigglefilter",
        power_w=power,
        decisions_per_second=decisions_per_second,
        energy_per_decision_mj=power / decisions_per_second * 1e3,
    )


def basecaller_energy(
    record: BasecallerPerformance,
    decision_prefix_samples: int = 2000,
) -> EnergyEstimate:
    """Energy per Read Until decision for a GPU basecalling configuration.

    The GPU processes ``read_until_bases_per_s`` worth of decisions; each
    decision consumes ``decision_prefix_samples`` of signal (~200 bases), so
    decisions/s = bases/s / bases-per-decision, at the device's board power.
    """
    if decision_prefix_samples <= 0:
        raise ValueError("decision_prefix_samples must be positive")
    bases_per_decision = decision_prefix_samples / SAMPLES_PER_BASE
    decisions_per_second = record.read_until_bases_per_s / bases_per_decision
    return EnergyEstimate(
        classifier=f"{record.basecaller}@{record.device}",
        power_w=record.power_w,
        decisions_per_second=decisions_per_second,
        energy_per_decision_mj=record.power_w / decisions_per_second * 1e3,
    )


def energy_comparison(
    genome_length_bases: int = 30_000,
    decision_prefix_samples: int = 2000,
) -> List[Dict[str, object]]:
    """Energy-per-decision rows for every classifier option."""
    rows: List[Dict[str, object]] = []
    for record in BASECALLER_PERFORMANCE:
        estimate = basecaller_energy(record, decision_prefix_samples)
        rows.append(
            {
                "classifier": estimate.classifier,
                "power_w": estimate.power_w,
                "decisions_per_s": estimate.decisions_per_second,
                "energy_per_decision_mj": estimate.energy_per_decision_mj,
            }
        )
    accelerator = accelerator_energy(
        genome_length_bases, query_samples=decision_prefix_samples
    )
    rows.append(
        {
            "classifier": accelerator.classifier,
            "power_w": accelerator.power_w,
            "decisions_per_s": accelerator.decisions_per_second,
            "energy_per_decision_mj": accelerator.energy_per_decision_mj,
        }
    )
    return rows


def energy_advantage_over(
    device_classifier: str = "guppy_lite@jetson_xavier",
    genome_length_bases: int = 30_000,
) -> float:
    """Ratio of a GPU option's energy/decision to SquiggleFilter's."""
    rows = {row["classifier"]: row for row in energy_comparison(genome_length_bases)}
    if device_classifier not in rows:
        raise KeyError(f"unknown classifier {device_classifier!r}; available: {sorted(rows)}")
    return (
        rows[device_classifier]["energy_per_decision_mj"]
        / rows["squigglefilter"]["energy_per_decision_mj"]
    )
