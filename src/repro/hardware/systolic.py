"""Systolic-array tile model (paper Section 5.1, Figure 13).

A tile is a 1-D chain of 2000 processing elements, one per query sample. The
reference squiggle streams through the chain; after ``query_length +
reference_length`` cycles the last PE has seen every cell of the final DP row
and the threshold comparator knows the minimum alignment cost.

Two execution modes are provided:

* :meth:`SystolicTile.align` — the fast functional model. It reuses the
  integer software kernel (bit-compatible with the hardware recurrence) and
  reports the cycle count analytically. This is what experiments use.
* :meth:`SystolicTile.simulate_cycles` — a true cycle-by-cycle simulation
  built from :class:`repro.hardware.pe.ProcessingElement`. It is quadratic in
  Python and intended for small inputs; tests use it to prove the systolic
  schedule equals the software kernel.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.core.config import SDTWConfig
from repro.core.sdtw import SDTWState, sdtw_resume
from repro.hardware.pe import INFINITE_COST, PEState, ProcessingElement, ThresholdComparator


@dataclass
class TileResult:
    """Outcome of one tile-level alignment."""

    cost: float
    end_position: int
    accept: Optional[bool]
    query_samples: int
    reference_samples: int
    compute_cycles: int
    state: Optional[SDTWState] = None

    @property
    def wavefront_cycles(self) -> int:
        """Cycles for the systolic wavefront alone (fill + stream)."""
        return self.compute_cycles


class SystolicTile:
    """Functional model of one SquiggleFilter tile."""

    def __init__(
        self,
        n_pes: int = 2000,
        match_bonus: int = 10,
        match_bonus_cap: int = 10,
        reference_buffer_kb: float = 100.0,
    ) -> None:
        if n_pes <= 0:
            raise ValueError("n_pes must be positive")
        self.n_pes = n_pes
        self.match_bonus = match_bonus
        self.match_bonus_cap = match_bonus_cap
        self.reference_buffer_kb = reference_buffer_kb
        self.config = SDTWConfig(
            distance="absolute",
            allow_reference_deletions=False,
            quantize=True,
            match_bonus=float(match_bonus),
            match_bonus_cap=match_bonus_cap,
        )

    def reference_fits(self, reference_samples: int, bytes_per_sample: int = 2) -> bool:
        """Whether the reference squiggle fits this tile's on-chip buffer."""
        return reference_samples * bytes_per_sample <= self.reference_buffer_kb * 1024

    def align(
        self,
        query: np.ndarray,
        reference: np.ndarray,
        threshold: Optional[float] = None,
        state: Optional[SDTWState] = None,
        keep_state: bool = False,
    ) -> TileResult:
        """Align a normalized, quantized query prefix against the reference.

        ``query`` must contain at most ``n_pes`` samples (one per PE). Passing
        a ``state`` continues a previous prefix (multi-stage filtering);
        ``keep_state`` controls whether the intermediate last-row costs are
        written out (the DRAM traffic discussed in Section 5.1).
        """
        query_values = np.asarray(query)
        if query_values.size == 0:
            raise ValueError("query must be non-empty")
        if query_values.size > self.n_pes:
            raise ValueError(
                f"query of {query_values.size} samples exceeds the {self.n_pes}-PE tile"
            )
        reference_values = np.asarray(reference)
        new_state = sdtw_resume(query_values, reference_values, self.config, state=state)
        cost = new_state.cost
        accept = None if threshold is None else bool(cost <= threshold)
        return TileResult(
            cost=cost,
            end_position=new_state.end_position,
            accept=accept,
            query_samples=int(query_values.size),
            reference_samples=int(reference_values.size),
            compute_cycles=int(query_values.size + reference_values.size - 1),
            state=new_state if keep_state else None,
        )

    def intermediate_bandwidth_bytes(self, reference_samples: int, bytes_per_cost: int = 4) -> int:
        """Bytes written to DRAM when storing the last row for multi-stage filtering."""
        return int(reference_samples * bytes_per_cost)

    # ----------------------------------------------------------- cycle simulation
    def simulate_cycles(
        self,
        query: np.ndarray,
        reference: np.ndarray,
        threshold: Optional[float] = None,
    ) -> TileResult:
        """Cycle-by-cycle simulation using explicit PEs (small inputs only)."""
        query_values = [int(value) for value in np.asarray(query).tolist()]
        reference_values = [int(value) for value in np.asarray(reference).tolist()]
        if not query_values or not reference_values:
            raise ValueError("query and reference must be non-empty")
        if len(query_values) > self.n_pes:
            raise ValueError(
                f"query of {len(query_values)} samples exceeds the {self.n_pes}-PE tile"
            )
        pes = [
            ProcessingElement(
                index=index,
                match_bonus=self.match_bonus,
                match_bonus_cap=self.match_bonus_cap,
            )
            for index in range(len(query_values))
        ]
        for pe, value in zip(pes, query_values):
            pe.reset(value)
        comparator = ThresholdComparator(
            threshold=None if threshold is None else int(threshold)
        )

        n_query = len(query_values)
        n_reference = len(reference_values)
        total_cycles = n_query + n_reference - 1
        last_row: List[int] = [INFINITE_COST] * n_reference
        for cycle in range(total_cycles):
            # Evaluate PEs from the last to the first so each PE reads its left
            # neighbour's *previous-cycle* outputs before they are overwritten.
            for index in range(len(pes) - 1, -1, -1):
                column = cycle - index
                if not 0 <= column < n_reference:
                    continue
                pe = pes[index]
                if index == 0:
                    left_previous = PEState()
                    left_before_previous = PEState()
                else:
                    left = pes[index - 1]
                    left_previous = left.previous
                    left_before_previous = left.before_previous
                state = pe.step(reference_values[column], left_previous, left_before_previous)
                if index == len(pes) - 1:
                    comparator.observe(state)
                    last_row[column] = state.cost
        row = np.array(last_row, dtype=np.float64)
        end_position = int(np.argmin(row))
        cost = float(row[end_position])
        accept = None
        if threshold is not None:
            accept = comparator.decision()
        return TileResult(
            cost=cost,
            end_position=end_position,
            accept=accept,
            query_samples=n_query,
            reference_samples=n_reference,
            compute_cycles=total_cycles,
            state=None,
        )
