"""Device catalog (paper Table 3) and the edge System-on-Chip composition.

Table 3 lists the GPUs/CPUs the paper profiles basecalling on; Section 5
describes the proposed SoC (SquiggleFilter ASIC + edge GPU + 8-core ARM CPU
+ LPDDR4x + eMMC flash). These are encoded as data so the performance and
profiling models can reason about them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple


@dataclass(frozen=True)
class DeviceSpec:
    """One compute device used in the evaluation."""

    name: str
    device_class: str  # "edge_gpu", "gpu", "edge_cpu", "cpu", "asic"
    cores: int
    clock_mhz: float
    power_w: float
    memory_bandwidth_gb_s: float

    def __post_init__(self) -> None:
        if self.cores <= 0:
            raise ValueError("cores must be positive")
        if self.clock_mhz <= 0:
            raise ValueError("clock_mhz must be positive")
        if self.power_w <= 0:
            raise ValueError("power_w must be positive")
        if self.memory_bandwidth_gb_s <= 0:
            raise ValueError("memory_bandwidth_gb_s must be positive")


# Table 3 of the paper, plus the SquiggleFilter ASIC itself for comparisons.
DEVICES: Tuple[DeviceSpec, ...] = (
    DeviceSpec("jetson_xavier", "edge_gpu", cores=512, clock_mhz=1377.0, power_w=30.0, memory_bandwidth_gb_s=137.0),
    DeviceSpec("arm_v8_2", "edge_cpu", cores=8, clock_mhz=2265.0, power_w=15.0, memory_bandwidth_gb_s=137.0),
    DeviceSpec("titan_xp", "gpu", cores=3840, clock_mhz=1582.0, power_w=250.0, memory_bandwidth_gb_s=547.0),
    DeviceSpec("xeon_e5_2697v3", "cpu", cores=56, clock_mhz=2600.0, power_w=290.0, memory_bandwidth_gb_s=136.0),
    DeviceSpec("squigglefilter_asic", "asic", cores=10000, clock_mhz=2500.0, power_w=14.31, memory_bandwidth_gb_s=137.0),
)


def device(name: str) -> DeviceSpec:
    """Look up one device by name."""
    for spec in DEVICES:
        if spec.name == name:
            return spec
    raise KeyError(f"unknown device {name!r}; available: {[spec.name for spec in DEVICES]}")


def device_table() -> List[Dict[str, object]]:
    """Table 3 as rows."""
    return [
        {
            "device": spec.name,
            "class": spec.device_class,
            "cores": spec.cores,
            "clock_mhz": spec.clock_mhz,
            "power_w": spec.power_w,
            "memory_bandwidth_gb_s": spec.memory_bandwidth_gb_s,
        }
        for spec in DEVICES
    ]


@dataclass(frozen=True)
class EdgeSoC:
    """The proposed edge System-on-Chip (paper Figure 12)."""

    gpu: DeviceSpec = DEVICES[0]
    cpu: DeviceSpec = DEVICES[1]
    accelerator_power_w: float = 14.31
    accelerator_area_mm2: float = 13.25
    dram_gb: int = 32
    flash_gb: int = 32
    dram_bandwidth_gb_s: float = 137.0

    @property
    def total_power_w(self) -> float:
        """SoC power budget with all engines active."""
        return self.gpu.power_w + self.cpu.power_w + self.accelerator_power_w

    def supports_multistage_bandwidth(
        self, n_tiles: int = 5, per_tile_gb_s: float = 10.0
    ) -> bool:
        """Whether DRAM bandwidth covers multi-stage intermediate-cost traffic.

        The paper: each tile writing intermediate costs consumes ~10 GB/s; the
        Jetson-class memory system provides 137 GB/s, so five tiles fit.
        """
        return n_tiles * per_tile_gb_s <= self.dram_bandwidth_gb_s

    def flash_stores_one_day(self, daily_output_gb: float = 20.0) -> bool:
        """Whether on-board flash holds a day's sequencing output (Section 5)."""
        return daily_output_gb <= self.flash_gb
