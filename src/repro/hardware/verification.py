"""Hardware/software equivalence checking.

The published artifact verifies its RTL with a SystemVerilog testbench that
replays reads through the systolic array and compares against the software
model. This module plays the same role for the Python hardware model: it
drives the cycle-accurate PE simulation and the functional tile model with
random or real queries and checks that every cost matches the software sDTW
kernel bit for bit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.core.config import SDTWConfig
from repro.core.sdtw import sdtw_cost
from repro.hardware.systolic import SystolicTile


@dataclass
class EquivalenceCase:
    """One verification vector and its outcome."""

    case_id: int
    query_samples: int
    reference_samples: int
    software_cost: float
    functional_cost: float
    cycle_accurate_cost: Optional[float]
    passed: bool


@dataclass
class EquivalenceReport:
    """Results of an equivalence-checking campaign."""

    cases: List[EquivalenceCase] = field(default_factory=list)

    @property
    def n_cases(self) -> int:
        return len(self.cases)

    @property
    def n_failures(self) -> int:
        return sum(1 for case in self.cases if not case.passed)

    @property
    def all_passed(self) -> bool:
        return self.n_failures == 0

    def failures(self) -> List[EquivalenceCase]:
        return [case for case in self.cases if not case.passed]


class HardwareEquivalenceChecker:
    """Compare the hardware models against the software kernel."""

    def __init__(
        self,
        n_pes: int = 64,
        match_bonus: int = 10,
        match_bonus_cap: int = 10,
        tolerance: float = 0.5,
    ) -> None:
        if tolerance < 0:
            raise ValueError("tolerance must be non-negative")
        self.tile = SystolicTile(
            n_pes=n_pes, match_bonus=match_bonus, match_bonus_cap=match_bonus_cap
        )
        self.config = SDTWConfig(
            distance="absolute",
            allow_reference_deletions=False,
            quantize=True,
            match_bonus=float(match_bonus),
            match_bonus_cap=match_bonus_cap,
        )
        self.tolerance = tolerance

    def check_case(
        self,
        query: np.ndarray,
        reference: np.ndarray,
        case_id: int = 0,
        cycle_accurate: bool = True,
    ) -> EquivalenceCase:
        """Check one query/reference pair across the three implementations."""
        software = sdtw_cost(query, reference, self.config)
        functional = self.tile.align(query, reference)
        cycle_cost: Optional[float] = None
        passed = abs(functional.cost - software.cost) <= self.tolerance
        if cycle_accurate:
            simulated = self.tile.simulate_cycles(query, reference)
            cycle_cost = simulated.cost
            passed = passed and abs(simulated.cost - software.cost) <= self.tolerance
        return EquivalenceCase(
            case_id=case_id,
            query_samples=int(np.asarray(query).size),
            reference_samples=int(np.asarray(reference).size),
            software_cost=software.cost,
            functional_cost=functional.cost,
            cycle_accurate_cost=cycle_cost,
            passed=passed,
        )

    def run_random_campaign(
        self,
        n_cases: int = 20,
        query_samples: int = 48,
        reference_samples: int = 160,
        seed: int = 0,
        cycle_accurate: bool = True,
    ) -> EquivalenceReport:
        """Drive the models with random int8 vectors (the RTL testbench analogue)."""
        if n_cases <= 0:
            raise ValueError("n_cases must be positive")
        if query_samples > self.tile.n_pes:
            raise ValueError("query_samples must not exceed the tile's PE count")
        rng = np.random.default_rng(seed)
        report = EquivalenceReport()
        for case_id in range(n_cases):
            query = rng.integers(-127, 128, size=query_samples)
            reference = rng.integers(-127, 128, size=reference_samples)
            report.cases.append(
                self.check_case(query, reference, case_id=case_id, cycle_accurate=cycle_accurate)
            )
        return report

    def run_signal_campaign(
        self,
        quantized_queries: Sequence[np.ndarray],
        quantized_reference: np.ndarray,
        cycle_accurate: bool = False,
    ) -> EquivalenceReport:
        """Verify against real (quantized) read prefixes and a real reference."""
        report = EquivalenceReport()
        for case_id, query in enumerate(quantized_queries):
            trimmed = np.asarray(query)[: self.tile.n_pes]
            report.cases.append(
                self.check_case(
                    trimmed, quantized_reference, case_id=case_id, cycle_accurate=cycle_accurate
                )
            )
        return report
