"""Processing element of the sDTW systolic array (paper Section 5.2, Figure 14).

Each PE owns one query sample (one row of the sDTW matrix) and computes one
cell per cycle as the reference streams past: at cycle ``c`` PE ``i``
processes reference column ``j = c - i``. The DP dependencies map onto the
left neighbour's outputs:

* vertical move ``S[i-1, j]`` — the left neighbour's output from cycle
  ``c-1``,
* diagonal move ``S[i-1, j-1]`` — the left neighbour's output from cycle
  ``c-2`` (minus the match bonus).

The horizontal move (a reference deletion) does not exist in the hardware
recurrence, which is what makes the one-PE-per-query-sample schedule work.
The last PE compares its cost to the ejection threshold every cycle.

This is a functional, cycle-by-cycle model used to verify that the systolic
schedule computes exactly the same costs as the software kernel
(:mod:`repro.core.sdtw`); the area/power of a synthesized PE are recorded in
:mod:`repro.hardware.asic`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

# Sentinel for "no valid cost yet" (pipeline not filled); any real cost is
# far smaller.
INFINITE_COST = 1 << 40


@dataclass
class PEState:
    """Values a PE forwards to its right neighbour after one cycle."""

    cost: int = INFINITE_COST
    run_length: int = 0
    valid: bool = False


@dataclass
class ProcessingElement:
    """One PE: holds a query sample and its last two outputs."""

    index: int
    query_value: int = 0
    match_bonus: int = 10
    match_bonus_cap: int = 10
    # Outputs of this PE's previous two cycles, consumed by the right neighbour.
    previous: PEState = field(default_factory=PEState)
    before_previous: PEState = field(default_factory=PEState)

    def reset(self, query_value: int) -> None:
        """Load a new query sample and clear pipeline state."""
        self.query_value = int(query_value)
        self.previous = PEState()
        self.before_previous = PEState()

    def step(
        self,
        reference_value: int,
        left_previous: PEState,
        left_before_previous: PEState,
    ) -> PEState:
        """Advance one cycle and return the newly computed cell.

        ``left_previous`` / ``left_before_previous`` are the left neighbour's
        outputs from cycles ``c-1`` and ``c-2``. PE 0 has no left neighbour
        and implements the subsequence boundary condition
        ``S[0, j] = |Q[0] - R[j]|`` (a free alignment start at any reference
        position).
        """
        local = abs(self.query_value - int(reference_value))
        if self.index == 0:
            new_state = PEState(cost=int(local), run_length=1, valid=True)
        else:
            diagonal = INFINITE_COST
            if left_before_previous.valid:
                bonus = self.match_bonus * min(
                    left_before_previous.run_length, self.match_bonus_cap
                )
                diagonal = left_before_previous.cost - bonus
            vertical = left_previous.cost if left_previous.valid else INFINITE_COST
            if diagonal >= INFINITE_COST and vertical >= INFINITE_COST:
                new_state = PEState()
            elif diagonal < vertical:
                new_state = PEState(cost=int(local + diagonal), run_length=1, valid=True)
            else:
                new_state = PEState(
                    cost=int(local + vertical),
                    run_length=int(left_previous.run_length) + 1,
                    valid=True,
                )
        self.before_previous = self.previous
        self.previous = new_state
        return new_state


@dataclass
class ThresholdComparator:
    """Logic attached to the last PE: track the minimum cost and the decision."""

    threshold: Optional[int] = None
    minimum_cost: int = INFINITE_COST

    def observe(self, state: PEState) -> None:
        if state.valid and state.cost < self.minimum_cost:
            self.minimum_cost = int(state.cost)

    @property
    def has_observation(self) -> bool:
        return self.minimum_cost < INFINITE_COST

    def decision(self) -> bool:
        """True = accept (cost at or below threshold)."""
        if self.threshold is None:
            raise ValueError("no ejection threshold configured")
        if not self.has_observation:
            return False
        return self.minimum_cost <= self.threshold
