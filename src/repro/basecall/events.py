"""Event segmentation of raw nanopore signal.

Event segmentation detects the boundaries where a new base enters the pore,
turning the raw sample stream into per-base "events" (mean current, length).
The first Read Until pipeline (Loose et al. 2016) and the UNCALLED baseline
both rely on it, and the paper describes it as a rudimentary form of
basecalling. We use a t-statistic change-point detector over a sliding
window, the same approach as ONT's classic event detection.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np


@dataclass(frozen=True)
class Event:
    """One detected event: a run of samples attributed to a single k-mer."""

    start: int
    length: int
    mean: float
    stdv: float

    def __post_init__(self) -> None:
        if self.start < 0:
            raise ValueError("event start must be non-negative")
        if self.length <= 0:
            raise ValueError("event length must be positive")

    @property
    def end(self) -> int:
        return self.start + self.length


def _window_statistics(signal: np.ndarray, window: int) -> tuple:
    """Rolling mean and variance of ``signal`` for each window start."""
    cumsum = np.concatenate([[0.0], np.cumsum(signal)])
    cumsum_sq = np.concatenate([[0.0], np.cumsum(signal * signal)])
    totals = cumsum[window:] - cumsum[:-window]
    totals_sq = cumsum_sq[window:] - cumsum_sq[:-window]
    means = totals / window
    variances = np.maximum(totals_sq / window - means * means, 1e-8)
    return means, variances


def tstat_boundaries(
    signal: np.ndarray,
    window: int = 5,
    threshold: float = 3.5,
) -> List[int]:
    """Detect level-change boundaries using a two-window t-statistic.

    For each position the t-statistic compares the ``window`` samples before
    and after it; local maxima above ``threshold`` are boundaries.
    """
    values = np.asarray(signal, dtype=np.float64)
    if window < 2:
        raise ValueError("window must be at least 2")
    if values.size < 2 * window + 1:
        return []
    means, variances = _window_statistics(values, window)
    # t-stat between window ending at i (left) and window starting at i (right)
    left_mean = means[: -window]
    right_mean = means[window:]
    left_var = variances[: -window]
    right_var = variances[window:]
    pooled = np.sqrt((left_var + right_var) / window)
    tstat = np.abs(right_mean - left_mean) / np.maximum(pooled, 1e-8)

    boundaries: List[int] = []
    last = -window
    for index in range(1, tstat.size - 1):
        if tstat[index] < threshold:
            continue
        if tstat[index] >= tstat[index - 1] and tstat[index] >= tstat[index + 1]:
            position = index + window
            if position - last >= window:
                boundaries.append(position)
                last = position
    return boundaries


def segment_events(
    signal: np.ndarray,
    window: int = 5,
    threshold: float = 3.5,
    min_length: int = 2,
) -> List[Event]:
    """Segment a raw signal into events.

    Consecutive boundaries delimit events; events shorter than ``min_length``
    samples are merged into their predecessor (they are usually spurious
    detections on noise spikes).
    """
    values = np.asarray(signal, dtype=np.float64)
    if values.size == 0:
        return []
    boundaries = tstat_boundaries(values, window=window, threshold=threshold)
    edges = [0] + boundaries + [int(values.size)]
    events: List[Event] = []
    for start, end in zip(edges[:-1], edges[1:]):
        if end <= start:
            continue
        segment = values[start:end]
        if events and segment.size < min_length:
            previous = events.pop()
            merged = values[previous.start : end]
            events.append(
                Event(
                    start=previous.start,
                    length=int(merged.size),
                    mean=float(merged.mean()),
                    stdv=float(merged.std()),
                )
            )
            continue
        events.append(
            Event(
                start=int(start),
                length=int(segment.size),
                mean=float(segment.mean()),
                stdv=float(segment.std()),
            )
        )
    return events


def event_means(events: List[Event]) -> np.ndarray:
    """Convenience: the per-event mean currents as an array."""
    return np.array([event.mean for event in events], dtype=np.float64)


def expected_event_count(n_samples: int, samples_per_base: float = 10.0) -> int:
    """Rough number of events expected for ``n_samples`` of signal."""
    if samples_per_base <= 0:
        raise ValueError("samples_per_base must be positive")
    return max(int(round(n_samples / samples_per_base)), 0)
