"""Simulated DNN basecallers (Guppy and Guppy-lite stand-ins).

The real Guppy basecaller is a proprietary LSTM+CTC network; it is not
available offline and reimplementing it would not change any conclusion the
paper draws (the paper treats it as a black box with a measured accuracy,
latency and throughput). The substitution used here:

* **accuracy behaviour** — :class:`SimulatedBasecaller` produces base calls by
  corrupting the read's ground-truth sequence with substitution/indel errors
  at the profile's rate. Downstream alignment then behaves like alignment of
  real basecalls of that accuracy (MiniMap2 tolerates basecall errors, which
  is why Guppy-lite suffices for Read Until classification).
* **compute behaviour** — each call reports the number of arithmetic
  operations a Guppy-class network of that profile would spend on the chunk,
  using the per-chunk operation counts the paper quotes (141 M operations for
  Guppy-lite, 2 412 M for Guppy per 2000-sample chunk), so the profiling and
  scalability models can budget compute without a GPU.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.genomes.sequences import transcribe_errors
from repro.sequencer.reads import Read


@dataclass(frozen=True)
class BasecallerProfile:
    """Accuracy/compute profile of one basecaller configuration."""

    name: str
    substitution_rate: float
    insertion_rate: float
    deletion_rate: float
    operations_per_chunk: int
    chunk_samples: int = 2000
    model_weights: int = 0

    def __post_init__(self) -> None:
        for field_name in ("substitution_rate", "insertion_rate", "deletion_rate"):
            rate = getattr(self, field_name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{field_name} must be within [0, 1], got {rate}")
        if self.substitution_rate + self.insertion_rate + self.deletion_rate >= 1.0:
            raise ValueError("combined error rate must be below 1")
        if self.operations_per_chunk <= 0:
            raise ValueError("operations_per_chunk must be positive")
        if self.chunk_samples <= 0:
            raise ValueError("chunk_samples must be positive")

    @property
    def error_rate(self) -> float:
        """Total per-base error probability."""
        return self.substitution_rate + self.insertion_rate + self.deletion_rate

    @property
    def operations_per_sample(self) -> float:
        return self.operations_per_chunk / self.chunk_samples


# Paper Section 4.8: Guppy-lite evaluates 141 M operations per 2000-sample
# chunk with 284 k weights; Guppy evaluates 2 412 M. Accuracy figures follow
# published Guppy fast/hac read accuracies (~92 % / ~95 %).
GUPPY = BasecallerProfile(
    name="guppy",
    substitution_rate=0.03,
    insertion_rate=0.01,
    deletion_rate=0.01,
    operations_per_chunk=2_412_000_000,
    model_weights=5_600_000,
)

GUPPY_LITE = BasecallerProfile(
    name="guppy_lite",
    substitution_rate=0.05,
    insertion_rate=0.015,
    deletion_rate=0.015,
    operations_per_chunk=141_000_000,
    model_weights=284_000,
)


@dataclass
class BasecallResult:
    """Output of basecalling one read prefix."""

    read_id: str
    sequence: str
    n_samples: int
    n_operations: int
    profile_name: str

    @property
    def n_bases(self) -> int:
        return len(self.sequence)


class SimulatedBasecaller:
    """Oracle-with-errors basecaller used by the baseline Read Until pipeline."""

    def __init__(self, profile: BasecallerProfile = GUPPY_LITE, seed: Optional[int] = None) -> None:
        self.profile = profile
        self._rng = np.random.default_rng(seed)

    def basecall(self, read: Read, n_samples: Optional[int] = None) -> BasecallResult:
        """Basecall (a prefix of) one read.

        ``n_samples`` limits the signal examined, as in Read Until where only
        the first chunk(s) are basecalled before the classification decision.
        The number of bases returned is proportional to the prefix examined.
        """
        total_samples = read.n_samples
        used_samples = total_samples if n_samples is None else min(n_samples, total_samples)
        if used_samples <= 0:
            raise ValueError("cannot basecall zero samples")
        fraction = used_samples / total_samples if total_samples else 0.0
        n_bases = max(int(round(read.n_bases * fraction)), 1)
        true_prefix = read.sequence[:n_bases]
        called = transcribe_errors(
            true_prefix,
            substitution_rate=self.profile.substitution_rate,
            insertion_rate=self.profile.insertion_rate,
            deletion_rate=self.profile.deletion_rate,
            rng=self._rng,
        )
        n_chunks = int(np.ceil(used_samples / self.profile.chunk_samples))
        return BasecallResult(
            read_id=read.read_id,
            sequence=called,
            n_samples=used_samples,
            n_operations=n_chunks * self.profile.operations_per_chunk,
            profile_name=self.profile.name,
        )

    def basecall_batch(self, reads: Sequence[Read], n_samples: Optional[int] = None) -> list:
        """Basecall a batch of reads (convenience for the assembly pipeline)."""
        return [self.basecall(read, n_samples) for read in reads]

    def identity_estimate(self) -> float:
        """Approximate per-base identity of this basecaller's output."""
        return max(0.0, 1.0 - self.profile.error_rate)
