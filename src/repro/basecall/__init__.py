"""Basecalling substrate: simulated Guppy/Guppy-lite and event segmentation."""

from repro.basecall.basecaller import BasecallerProfile, BasecallResult, SimulatedBasecaller
from repro.basecall.events import Event, segment_events
from repro.basecall.viterbi import EventViterbiBasecaller, ViterbiBasecall
from repro.basecall.performance import (
    BASECALLER_PERFORMANCE,
    BasecallerPerformance,
    basecaller_performance,
    read_until_latency_ms,
    read_until_throughput_samples_per_s,
)

__all__ = [
    "BASECALLER_PERFORMANCE",
    "BasecallResult",
    "BasecallerPerformance",
    "BasecallerProfile",
    "Event",
    "EventViterbiBasecaller",
    "SimulatedBasecaller",
    "ViterbiBasecall",
    "basecaller_performance",
    "read_until_latency_ms",
    "read_until_throughput_samples_per_s",
    "segment_events",
]
