"""Signal-space Viterbi basecaller.

:class:`SimulatedBasecaller` models Guppy as an oracle-with-errors because
the real DNN is unavailable. This module provides the complementary,
fully-from-signal substrate: a classic pore-model basecaller in the style of
the earliest nanopore basecallers (and of the event-alignment step in Loose
et al.'s original Read Until work). It segments the raw signal into events,
then decodes the most likely k-mer path through the pore model with the
Viterbi algorithm, where consecutive k-mers must overlap by k-1 bases.

It is far less accurate than a modern DNN basecaller — which is precisely
the point the paper makes about why basecalling became a heavy DNN workload —
but it closes the loop: every stage of the pipeline can run with no access to
ground-truth sequence at all.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.basecall.events import Event, segment_events
from repro.core.normalization import NormalizationConfig, SignalNormalizer
from repro.genomes.sequences import BASES
from repro.pore_model.kmer_model import KmerModel


@dataclass
class ViterbiBasecall:
    """Result of decoding one signal."""

    sequence: str
    kmer_path: List[int]
    n_events: int
    log_likelihood: float

    @property
    def n_bases(self) -> int:
        return len(self.sequence)


class EventViterbiBasecaller:
    """Decode raw current into bases using events + a pore-model HMM.

    The hidden state after event ``t`` is the k-mer occupying the pore. From
    one event to the next the strand either *stays* (the event detector
    over-segmented; same k-mer) or *steps* by one base (the k-mer shifts left
    and one of four new bases enters). Emission likelihood is Gaussian around
    the pore model's expected current for the k-mer, computed on the same
    normalized scale used by the filter.
    """

    def __init__(
        self,
        kmer_model: Optional[KmerModel] = None,
        stay_probability: float = 0.35,
        emission_sigma: float = 0.35,
        normalization: NormalizationConfig = NormalizationConfig(),
        event_window: int = 5,
        event_threshold: float = 3.5,
    ) -> None:
        if not 0.0 < stay_probability < 1.0:
            raise ValueError("stay_probability must be strictly between 0 and 1")
        if emission_sigma <= 0:
            raise ValueError("emission_sigma must be positive")
        self.kmer_model = kmer_model if kmer_model is not None else KmerModel()
        self.stay_probability = stay_probability
        self.emission_sigma = emission_sigma
        self.normalizer = SignalNormalizer(normalization)
        self.event_window = event_window
        self.event_threshold = event_threshold

        # Normalize the level table once so emissions and query events live on
        # the same scale regardless of per-read gain/offset.
        levels = self.kmer_model.levels()
        center = levels.mean()
        spread = np.abs(levels - center).mean()
        self._normalized_levels = (levels - center) / max(spread, 1e-9)
        self._n_states = self.kmer_model.table_size
        self._k = self.kmer_model.k

    # ------------------------------------------------------------------ events
    def events_from_signal(self, signal_pa: np.ndarray) -> List[Event]:
        return segment_events(
            np.asarray(signal_pa, dtype=np.float64),
            window=self.event_window,
            threshold=self.event_threshold,
        )

    def normalized_event_means(self, signal_pa: np.ndarray) -> np.ndarray:
        events = self.events_from_signal(signal_pa)
        if not events:
            return np.array([])
        means = np.array([event.mean for event in events], dtype=np.float64)
        return self.normalizer.normalize(means)

    # ------------------------------------------------------------------ decode
    def basecall_signal(self, signal_pa: np.ndarray) -> ViterbiBasecall:
        """Decode one raw signal into a base sequence."""
        observations = self.normalized_event_means(signal_pa)
        if observations.size == 0:
            return ViterbiBasecall(sequence="", kmer_path=[], n_events=0, log_likelihood=0.0)
        return self._viterbi(observations)

    def basecall_batch(self, signals: Sequence[np.ndarray]) -> List[ViterbiBasecall]:
        return [self.basecall_signal(signal) for signal in signals]

    def _emission_log_probabilities(self, observation: float) -> np.ndarray:
        difference = observation - self._normalized_levels
        return -0.5 * (difference / self.emission_sigma) ** 2

    def _viterbi(self, observations: np.ndarray) -> ViterbiBasecall:
        n_states = self._n_states
        n_observations = observations.size
        log_stay = np.log(self.stay_probability)
        log_step = np.log((1.0 - self.stay_probability) / 4.0)

        scores = self._emission_log_probabilities(observations[0])
        # backpointers[t, s]: predecessor state of s at observation t.
        backpointers = np.zeros((n_observations, n_states), dtype=np.int64)
        backpointers[0] = np.arange(n_states)

        for t in range(1, n_observations):
            stay_scores = scores + log_stay
            # Step move: the k-mer shifts by one base, so a destination state s
            # (whose first k-1 bases are the predecessor's last k-1 bases) has
            # four possible predecessors: (s >> 2) + b << 2(k-1) for b in 0..3.
            step_candidates = np.empty((4, n_states), dtype=np.float64)
            predecessor_index = np.empty((4, n_states), dtype=np.int64)
            suffix = np.arange(n_states, dtype=np.int64) >> 2
            for leading_base in range(4):
                predecessors = suffix + (leading_base << (2 * (self._k - 1)))
                step_candidates[leading_base] = scores[predecessors] + log_step
                predecessor_index[leading_base] = predecessors
            best_step_choice = np.argmax(step_candidates, axis=0)
            best_step_score = step_candidates[best_step_choice, np.arange(n_states)]
            best_step_predecessor = predecessor_index[best_step_choice, np.arange(n_states)]

            take_stay = stay_scores >= best_step_score
            merged = np.where(take_stay, stay_scores, best_step_score)
            backpointers[t] = np.where(take_stay, np.arange(n_states), best_step_predecessor)
            scores = merged + self._emission_log_probabilities(observations[t])

        # Traceback.
        state = int(np.argmax(scores))
        path = [state]
        for t in range(n_observations - 1, 0, -1):
            state = int(backpointers[t, state])
            path.append(state)
        path.reverse()

        sequence = self._path_to_sequence(path)
        return ViterbiBasecall(
            sequence=sequence,
            kmer_path=path,
            n_events=n_observations,
            log_likelihood=float(scores.max()),
        )

    def _path_to_sequence(self, path: List[int]) -> str:
        if not path:
            return ""
        bases = list(self._kmer_string(path[0]))
        previous = path[0]
        for state in path[1:]:
            if state == previous:
                continue  # stay: no new base
            bases.append(BASES[state % 4])
            previous = state
        return "".join(bases)

    def _kmer_string(self, state: int) -> str:
        characters = []
        for _ in range(self._k):
            characters.append(BASES[state % 4])
            state //= 4
        return "".join(reversed(characters))
