"""Basecaller performance models (paper Section 6 and Figure 16).

The paper measures Guppy and Guppy-lite latency/throughput on a server-class
Titan XP and estimates the edge-class Jetson AGX Xavier from the devices'
relative peak throughput (ONT does not ship fine-grained Read Until bindings
for ARM). Those measurements cannot be re-run offline, so this module encodes
them as a performance model: per (basecaller, device) we record the offline
batch throughput, the Read Until (small-batch) throughput penalty and the
per-decision latency, all taken from the numbers the paper reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

# MinION aggregate output used as the comparison point throughout the paper.
MINION_MAX_BASES_PER_S = 230_400.0
MINION_MAX_SAMPLES_PER_S = 2_050_000.0
GRIDION_THROUGHPUT_MULTIPLIER = 5.0

# Read Until (small batch) processing slows basecalling relative to offline
# batch mode: 4.05x for Guppy-lite, 2.85x for Guppy (Section 6).
READ_UNTIL_SLOWDOWN = {"guppy_lite": 4.05, "guppy": 2.85}

# Relative peak throughput of the Titan XP versus the Jetson AGX Xavier used
# to extrapolate edge performance (Section 6): the Jetson reaches ~95,700
# bases/s of Read Until Guppy-lite versus ~240,000 on the Titan.
TITAN_TO_JETSON_SCALE = 0.399


@dataclass(frozen=True)
class BasecallerPerformance:
    """Measured/estimated performance of one basecaller on one device."""

    basecaller: str
    device: str
    offline_bases_per_s: float
    read_until_bases_per_s: float
    read_until_latency_ms: float
    power_w: float

    def __post_init__(self) -> None:
        if self.offline_bases_per_s <= 0 or self.read_until_bases_per_s <= 0:
            raise ValueError("throughputs must be positive")
        if self.read_until_latency_ms <= 0:
            raise ValueError("latency must be positive")
        if self.power_w <= 0:
            raise ValueError("power must be positive")

    @property
    def read_until_samples_per_s(self) -> float:
        """Throughput in raw samples/s assuming ~10 samples per base."""
        return self.read_until_bases_per_s * 10.0

    @property
    def minion_fraction(self) -> float:
        """Fraction of a MinION's maximum output this configuration keeps up with."""
        return self.read_until_bases_per_s / MINION_MAX_BASES_PER_S

    def supports_full_read_until(self) -> bool:
        """Whether every pore of a MinION can use Read Until with this basecaller."""
        return self.minion_fraction >= 1.0


def _titan(basecaller: str, offline: float, latency_ms: float) -> BasecallerPerformance:
    return BasecallerPerformance(
        basecaller=basecaller,
        device="titan_xp",
        offline_bases_per_s=offline,
        read_until_bases_per_s=offline / READ_UNTIL_SLOWDOWN[basecaller],
        read_until_latency_ms=latency_ms,
        power_w=250.0,
    )


def _jetson(basecaller: str, titan: BasecallerPerformance) -> BasecallerPerformance:
    return BasecallerPerformance(
        basecaller=basecaller,
        device="jetson_xavier",
        offline_bases_per_s=titan.offline_bases_per_s * TITAN_TO_JETSON_SCALE,
        read_until_bases_per_s=titan.read_until_bases_per_s * TITAN_TO_JETSON_SCALE,
        read_until_latency_ms=titan.read_until_latency_ms / TITAN_TO_JETSON_SCALE,
        power_w=30.0,
    )


_TITAN_GUPPY_LITE = _titan("guppy_lite", offline=971_000.0, latency_ms=149.0)
_TITAN_GUPPY = _titan("guppy", offline=256_000.0, latency_ms=1_060.0)

BASECALLER_PERFORMANCE: Tuple[BasecallerPerformance, ...] = (
    _TITAN_GUPPY_LITE,
    _TITAN_GUPPY,
    _jetson("guppy_lite", _TITAN_GUPPY_LITE),
    _jetson("guppy", _TITAN_GUPPY),
)


def basecaller_performance(basecaller: str, device: str) -> BasecallerPerformance:
    """Look up the performance record for one (basecaller, device) pair."""
    for record in BASECALLER_PERFORMANCE:
        if record.basecaller == basecaller and record.device == device:
            return record
    available = sorted({(r.basecaller, r.device) for r in BASECALLER_PERFORMANCE})
    raise KeyError(f"no performance record for ({basecaller!r}, {device!r}); available: {available}")


def read_until_latency_ms(basecaller: str, device: str) -> float:
    """Per-decision classification latency (Figure 16a)."""
    return basecaller_performance(basecaller, device).read_until_latency_ms


def read_until_throughput_samples_per_s(basecaller: str, device: str) -> float:
    """Sustained Read Until classification throughput in samples/s (Figure 16b)."""
    return basecaller_performance(basecaller, device).read_until_samples_per_s


def extra_bases_sequenced(latency_ms: float, bases_per_second: float = 450.0) -> float:
    """Bases unnecessarily sequenced while a classification decision is pending.

    The paper notes Guppy-lite's 149 ms latency costs ~60 extra bases per read
    and Guppy's >1 s latency costs >400 bases, whereas SquiggleFilter's
    0.04 ms costs none.
    """
    if latency_ms < 0:
        raise ValueError("latency_ms must be non-negative")
    return latency_ms / 1000.0 * bases_per_second


def performance_table() -> List[Dict[str, object]]:
    """All records as rows (used by the Figure 16 bench)."""
    return [
        {
            "basecaller": record.basecaller,
            "device": record.device,
            "offline_bases_per_s": record.offline_bases_per_s,
            "read_until_bases_per_s": record.read_until_bases_per_s,
            "read_until_latency_ms": record.read_until_latency_ms,
            "minion_fraction": record.minion_fraction,
            "power_w": record.power_w,
        }
        for record in BASECALLER_PERFORMANCE
    ]
