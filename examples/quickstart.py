#!/usr/bin/env python3
"""Quickstart: build a SquiggleFilter and classify simulated nanopore reads.

This example walks through the core workflow of the library in a couple of
minutes of CPU time:

1. synthesize a target virus genome and a host background genome,
2. build the precomputed reference squiggle for the target,
3. simulate raw nanopore reads from a specimen containing both,
4. calibrate the sDTW ejection threshold on a handful of labelled reads, and
5. classify held-out reads, reporting the confusion matrix and a comparison
   against the conventional basecall + align classifier.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.analysis.metrics import confusion_from_labels
from repro.baselines.basecall_align import BasecallAlignClassifier
from repro.core.filter import SquiggleFilter
from repro.core.reference import ReferenceSquiggle
from repro.genomes.sequences import random_genome
from repro.pore_model.kmer_model import KmerModel
from repro.sequencer.reads import ReadGenerator, ReadLengthModel, SpecimenMixture

PREFIX_SAMPLES = 1500


def build_world(seed: int = 7):
    """Create the genomes, pore model and read generator for the example."""
    kmer_model = KmerModel(seed=941)
    target_genome = random_genome(3000, seed=seed)          # SARS-CoV-2-scale (scaled down)
    background_genome = random_genome(20_000, seed=seed + 1)  # host background
    mixture = SpecimenMixture.two_component(
        target_name="virus",
        target_genome=target_genome,
        background_name="host",
        background_genome=background_genome,
        target_fraction=0.01,
    )
    generator = ReadGenerator(
        mixture,
        kmer_model=kmer_model,
        length_model=ReadLengthModel(mean_bases=400, sigma=0.2, min_bases=250, max_bases=800),
        seed=seed + 2,
    )
    return kmer_model, target_genome, mixture, generator


def main() -> None:
    kmer_model, target_genome, mixture, generator = build_world()

    print("== SquiggleFilter quickstart ==")
    print(f"target genome: {len(target_genome)} bases; "
          f"background genome: {len(mixture.genomes['host'])} bases")

    # 1. Precompute the reference squiggle (forward + reverse complement).
    reference = ReferenceSquiggle.from_genome(target_genome, kmer_model=kmer_model)
    print(f"reference squiggle: {reference.n_positions} expected-current values "
          f"({reference.buffer_bytes() / 1024:.1f} KB in the on-chip buffer)")

    # 2. Build the filter and calibrate its threshold on labelled reads.
    squiggle_filter = SquiggleFilter(reference, prefix_samples=PREFIX_SAMPLES)
    calibration_reads = generator.generate_balanced(20)
    threshold = squiggle_filter.calibrate(
        [read.signal_pa for read in calibration_reads if read.is_target],
        [read.signal_pa for read in calibration_reads if not read.is_target],
    )
    print(f"calibrated ejection threshold: {threshold:.0f}")

    # 3. Classify held-out reads.
    evaluation_reads = generator.generate_balanced(30)
    decisions = [squiggle_filter.classify(read.signal_pa) for read in evaluation_reads]
    confusion = confusion_from_labels(
        [read.is_target for read in evaluation_reads],
        [decision.accept for decision in decisions],
    )
    print("\n-- SquiggleFilter (raw signal, sDTW) --")
    print(f"recall     : {confusion.recall:.3f}")
    print(f"precision  : {confusion.precision:.3f}")
    print(f"F1         : {confusion.f1:.3f}")
    print(f"false positive rate: {confusion.false_positive_rate:.3f}")

    # 4. Compare with the conventional basecall + align classifier.
    baseline = BasecallAlignClassifier(target_genome, prefix_samples=PREFIX_SAMPLES, seed=3)
    baseline_decisions = [baseline.classify_read(read) for read in evaluation_reads]
    baseline_confusion = confusion_from_labels(
        [read.is_target for read in evaluation_reads],
        [decision.accept for decision in baseline_decisions],
    )
    print("\n-- Basecall + align baseline (Guppy-lite + MiniMap2 stand-ins) --")
    print(f"recall     : {baseline_confusion.recall:.3f}")
    print(f"precision  : {baseline_confusion.precision:.3f}")
    print(f"F1         : {baseline_confusion.f1:.3f}")

    # 5. The reason SquiggleFilter exists: decision cost.
    mean_target_cost = np.mean(
        [d.cost for d, read in zip(decisions, evaluation_reads) if read.is_target]
    )
    mean_background_cost = np.mean(
        [d.cost for d, read in zip(decisions, evaluation_reads) if not read.is_target]
    )
    print("\nsDTW alignment cost separates the classes without any basecalling:")
    print(f"  mean target cost    : {mean_target_cost:,.0f}")
    print(f"  mean background cost: {mean_background_cost:,.0f}")
    print(f"  threshold           : {threshold:,.0f}")


if __name__ == "__main__":
    main()
