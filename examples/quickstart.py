#!/usr/bin/env python3
"""Quickstart: build a SquiggleFilter and classify simulated nanopore reads.

This example walks through the core workflow of the library in a couple of
minutes of CPU time:

1. synthesize a target virus genome and a host background genome,
2. build the precomputed reference squiggle for the target,
3. simulate raw nanopore reads from a specimen containing both,
4. calibrate the sDTW ejection threshold on a handful of labelled reads,
5. classify held-out reads, reporting the confusion matrix and a comparison
   against the conventional basecall + align classifier, and
6. run the calibrated filter through the *streaming* Read Until pipeline:
   the chunk simulator delivers signal incrementally, the classifier answers
   each chunk with a typed accept/eject/wait action, and ejected reads stop
   consuming pore time — the deployment mode the paper's latency argument is
   about. Streaming classifiers are built by name from a registry
   (``repro.pipeline.api``), so swapping SquiggleFilter for the baseline is a
   one-line config change.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.analysis.metrics import confusion_from_labels
from repro.baselines.basecall_align import BasecallAlignClassifier
from repro.core.filter import SquiggleFilter
from repro.core.reference import ReferenceSquiggle
from repro.genomes.sequences import random_genome
from repro.pipeline.api import build_pipeline
from repro.pore_model.kmer_model import KmerModel
from repro.sequencer.reads import ReadGenerator, ReadLengthModel, SpecimenMixture

PREFIX_SAMPLES = 1500


def build_world(seed: int = 7):
    """Create the genomes, pore model and read generator for the example."""
    kmer_model = KmerModel(seed=941)
    target_genome = random_genome(3000, seed=seed)          # SARS-CoV-2-scale (scaled down)
    background_genome = random_genome(20_000, seed=seed + 1)  # host background
    mixture = SpecimenMixture.two_component(
        target_name="virus",
        target_genome=target_genome,
        background_name="host",
        background_genome=background_genome,
        target_fraction=0.01,
    )
    generator = ReadGenerator(
        mixture,
        kmer_model=kmer_model,
        length_model=ReadLengthModel(mean_bases=400, sigma=0.2, min_bases=250, max_bases=800),
        seed=seed + 2,
    )
    return kmer_model, target_genome, mixture, generator


def main() -> None:
    kmer_model, target_genome, mixture, generator = build_world()

    print("== SquiggleFilter quickstart ==")
    print(f"target genome: {len(target_genome)} bases; "
          f"background genome: {len(mixture.genomes['host'])} bases")

    # 1. Precompute the reference squiggle (forward + reverse complement).
    reference = ReferenceSquiggle.from_genome(target_genome, kmer_model=kmer_model)
    print(f"reference squiggle: {reference.n_positions} expected-current values "
          f"({reference.buffer_bytes() / 1024:.1f} KB in the on-chip buffer)")

    # 2. Build the filter and calibrate its threshold on labelled reads.
    squiggle_filter = SquiggleFilter(reference, prefix_samples=PREFIX_SAMPLES)
    calibration_reads = generator.generate_balanced(20)
    threshold = squiggle_filter.calibrate(
        [read.signal_pa for read in calibration_reads if read.is_target],
        [read.signal_pa for read in calibration_reads if not read.is_target],
    )
    print(f"calibrated ejection threshold: {threshold:.0f}")

    # 3. Classify held-out reads.
    evaluation_reads = generator.generate_balanced(30)
    decisions = [squiggle_filter.classify(read.signal_pa) for read in evaluation_reads]
    confusion = confusion_from_labels(
        [read.is_target for read in evaluation_reads],
        [decision.accept for decision in decisions],
    )
    print("\n-- SquiggleFilter (raw signal, sDTW) --")
    print(f"recall     : {confusion.recall:.3f}")
    print(f"precision  : {confusion.precision:.3f}")
    print(f"F1         : {confusion.f1:.3f}")
    print(f"false positive rate: {confusion.false_positive_rate:.3f}")

    # 4. Compare with the conventional basecall + align classifier.
    baseline = BasecallAlignClassifier(target_genome, prefix_samples=PREFIX_SAMPLES, seed=3)
    baseline_decisions = [baseline.classify_read(read) for read in evaluation_reads]
    baseline_confusion = confusion_from_labels(
        [read.is_target for read in evaluation_reads],
        [decision.accept for decision in baseline_decisions],
    )
    print("\n-- Basecall + align baseline (Guppy-lite + MiniMap2 stand-ins) --")
    print(f"recall     : {baseline_confusion.recall:.3f}")
    print(f"precision  : {baseline_confusion.precision:.3f}")
    print(f"F1         : {baseline_confusion.f1:.3f}")

    # 5. The reason SquiggleFilter exists: decision cost.
    mean_target_cost = np.mean(
        [d.cost for d, read in zip(decisions, evaluation_reads) if read.is_target]
    )
    mean_background_cost = np.mean(
        [d.cost for d, read in zip(decisions, evaluation_reads) if not read.is_target]
    )
    print("\nsDTW alignment cost separates the classes without any basecalling:")
    print(f"  mean target cost    : {mean_target_cost:,.0f}")
    print(f"  mean background cost: {mean_background_cost:,.0f}")
    print(f"  threshold           : {threshold:,.0f}")

    # 6. Stream the same filter through the chunk-driven Read Until pipeline.
    #    build_pipeline() resolves the classifier by registry name and wires
    #    the chunk simulator, pore parameters and (optional) assembler.
    pipeline = build_pipeline(
        {
            "classifier": {
                "name": "squigglefilter",
                "reference": reference,
                "threshold": threshold,
                "prefix_samples": PREFIX_SAMPLES,
            },
            "target_genome": target_genome,
            "prefix_samples": PREFIX_SAMPLES,
            "chunk_samples": 500,
            "assemble": False,
        }
    )
    stream_reads = generator.generate_balanced(20)
    result = pipeline.run(stream_reads)
    print("\n-- Streaming Read Until session (chunk-driven) --")
    print(f"reads processed : {result.session.n_reads} "
          f"({result.session.n_ejected} ejected mid-read)")
    print(f"recall          : {result.recall:.3f}")
    print(f"mean background samples sequenced: "
          f"{result.session.mean_nontarget_sequenced_samples:,.0f} "
          f"(full reads would average "
          f"{np.mean([r.n_samples for r in stream_reads if not r.is_target]):,.0f})")
    print(f"pore-time spent : {result.runtime_s / 60:.2f} pore-minutes")


if __name__ == "__main__":
    main()
