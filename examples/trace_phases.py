#!/usr/bin/env python3
"""Observability walkthrough: trace a Read Until session end to end.

The paper's core analysis is a compute-time breakdown — where the
microseconds go between raw signal and an eject decision — and
``repro.obs`` gives the reproduction the same lens on itself. This example

1. opens a **traced** :class:`~repro.runtime.ReadUntilSession`
   (``RunConfig(trace=True, trace_path=...)``) on the sharded
   worker-process backend and streams a small simulated flowcell through
   it,
2. reads the in-memory **flight recorder** (``session.trace()``) and the
   per-phase totals in ``session.summary()["phase_totals"]``,
3. prints the per-track **self-time** phase tables — per track, self times
   decompose the root spans' wall clock exactly, so every table sums to
   that track's traced time — including one track per backend worker
   process, and
4. exports Chrome trace-event JSON on close: open it at
   https://ui.perfetto.dev, or run ``repro trace trace_phases.json``.

Tracing observes, never steers: the traced run's decisions are
bit-identical to an untraced one (asserted here on the same flowcell).

Run with:  python examples/trace_phases.py
"""

from __future__ import annotations

from repro.genomes.sequences import random_genome
from repro.obs import load_trace, validate_trace
from repro.pore_model.kmer_model import KmerModel
from repro.runtime import RunConfig, open_session
from repro.sequencer.reads import ReadGenerator, ReadLengthModel, SpecimenMixture

TRACE_PATH = "trace_phases.json"


def build_world(seed: int = 11):
    kmer_model = KmerModel(seed=941)
    mixture = SpecimenMixture.two_component(
        target_name="virus",
        target_genome=random_genome(1200, seed=seed),
        background_name="host",
        background_genome=random_genome(6000, seed=seed + 1),
        target_fraction=0.05,
    )
    generator = ReadGenerator(
        mixture,
        kmer_model=kmer_model,
        length_model=ReadLengthModel(
            mean_bases=300, sigma=0.15, min_bases=220, max_bases=500
        ),
        seed=seed + 2,
    )
    return mixture, generator


def main() -> None:
    mixture, generator = build_world()
    reads = [generator.generate_one(source="virus") for _ in range(4)]
    reads += [generator.generate_one(source="host") for _ in range(12)]
    calibration = generator.generate_balanced(10)

    base = RunConfig(
        genome=mixture.genomes["virus"],
        prefix_samples=800,
        chunk_samples=400,
        n_channels=8,
        backend="sharded",
        workers=2,
        label="trace-demo",
    )
    with open_session(base) as session:
        threshold = session.calibrate(
            [r.signal_pa for r in calibration if r.is_target],
            [r.signal_pa for r in calibration if not r.is_target],
        )
    print(f"== traced Read Until session (threshold {threshold:.0f}) ==")

    # 1. An untraced run: the decision baseline.
    untraced = base.with_(threshold=threshold)
    with open_session(untraced) as session:
        baseline = session.run(reads, target_genome=mixture.genomes["virus"])
        print(f"untraced: {baseline.session.n_reads} reads, "
              f"{baseline.session.n_ejected} ejected, trace() has "
              f"{len(session.trace())} records")

    # 2. The same run, traced + exported on close.
    traced = untraced.with_(trace=True, trace_path=TRACE_PATH)
    with open_session(traced) as session:
        result = session.run(reads, target_genome=mixture.genomes["virus"])
        summary = session.summary()
        tracer = session.tracer

        # Tracing observes; it never changes a decision.
        assert [o.ejected for o in result.session.outcomes] == [
            o.ejected for o in baseline.session.outcomes
        ]

        print(f"\nflight recorder: {len(session.trace())} spans/instants on "
              f"{len(tracer.tracks())} tracks {tracer.tracks()}")
        print(f"round wall clock: {summary['round_wall_s'] * 1e3:.1f} ms over "
              f"{summary['busy_rounds']} busy rounds ({summary['n_polls']} polls)")

        # 3. Per-track self-time breakdown. The parent track's self times sum
        #    to its root spans' wall clock; each worker track decomposes its
        #    own process's time the same way.
        for track in tracer.tracks():
            phases = tracer.phase_totals(track)
            total_self_ms = sum(s.self_s for s in phases.values()) * 1e3
            print(f"\n  [{track}] {total_self_ms:.1f} ms self time")
            ranked = sorted(
                phases.items(), key=lambda item: -item[1].self_s
            )
            for name, stat in ranked[:5]:
                share = stat.self_s * 1e3 / total_self_ms if total_self_ms else 0.0
                print(f"    {name:<20} x{stat.count:<4} "
                      f"{stat.self_s * 1e3:8.2f} ms  {share * 100:5.1f}%")

    # 4. The exported file is valid Chrome trace-event JSON.
    document = load_trace(TRACE_PATH)
    events = validate_trace(document)
    print(f"\nwrote {TRACE_PATH}: {len(events)} complete events, metadata "
          f"{document['metadata']} — open in ui.perfetto.dev or run "
          f"`repro trace {TRACE_PATH}`")


if __name__ == "__main__":
    main()
