#!/usr/bin/env python3
"""Programmable multi-virus panel detection.

The paper's vision is a programmable detector: as soon as a novel virus is
sequenced, its reference is pushed to deployed devices. Nothing limits the
reference buffer to a single genome — several small viral genomes fit in the
same 100 KB budget — so a single device can screen for a whole respiratory
panel at once. This example builds a three-virus panel, calibrates one
ejection threshold per member, and shows that raw reads are attributed to the
correct virus (or rejected as host background) from their first ~2000 signal
samples, and additionally demonstrates the pure-signal Viterbi basecaller as
a sanity check on a few accepted reads.

Run with:  python examples/multi_virus_panel.py
"""

from __future__ import annotations

from repro.basecall.viterbi import EventViterbiBasecaller
from repro.align.aligner import ReferenceAligner
from repro.core.panel import ReferencePanelFilter
from repro.genomes.sequences import random_genome
from repro.pore_model.kmer_model import KmerModel
from repro.sequencer.reads import ReadGenerator, ReadLengthModel, SpecimenMixture

PREFIX_SAMPLES = 1500
READS_PER_CLASS = 10


def build_panel_world(seed: int = 2026):
    kmer_model = KmerModel(seed=941)
    panel_genomes = {
        "coronavirus_like": random_genome(2500, seed=seed),
        "influenza_like": random_genome(1600, seed=seed + 1),
        "rsv_like": random_genome(1800, seed=seed + 2),
    }
    host_genome = random_genome(18_000, seed=seed + 3)
    return kmer_model, panel_genomes, host_genome


def reads_for(genome, host_genome, kmer_model, seed):
    mixture = SpecimenMixture.two_component("virus", genome, "host", host_genome, 0.5)
    generator = ReadGenerator(
        mixture,
        kmer_model=kmer_model,
        length_model=ReadLengthModel(mean_bases=400, sigma=0.2, min_bases=260, max_bases=800),
        seed=seed,
    )
    return generator.generate_balanced(READS_PER_CLASS)


def main() -> None:
    kmer_model, panel_genomes, host_genome = build_panel_world()
    print("== Multi-virus panel detection ==")
    for name, genome in panel_genomes.items():
        print(f"  {name:18s}: {len(genome):5d} bases")
    print(f"  host background   : {len(host_genome):5d} bases")

    panel = ReferencePanelFilter(
        panel_genomes, kmer_model=kmer_model, prefix_samples=PREFIX_SAMPLES
    )

    # Calibration reads per member plus shared background reads.
    calibration = {}
    background_signals = []
    evaluation = []
    for index, (name, genome) in enumerate(panel_genomes.items()):
        reads = reads_for(genome, host_genome, kmer_model, seed=500 + index)
        calibration[name] = [r.signal_pa for r in reads if r.is_target][: READS_PER_CLASS // 2]
        background_signals += [r.signal_pa for r in reads if not r.is_target][: READS_PER_CLASS // 2]
        evaluation += [(name, r) for r in reads if r.is_target][READS_PER_CLASS // 2 :]
        evaluation += [(None, r) for r in reads if not r.is_target][READS_PER_CLASS // 2 :]

    thresholds = panel.calibrate(calibration, background_signals)
    print("\ncalibrated thresholds:")
    for name, threshold in thresholds.items():
        print(f"  {name:18s}: {threshold:,.0f}")

    correct = 0
    confusion = {}
    for truth, read in evaluation:
        decision = panel.classify(read.signal_pa)
        predicted = decision.best_target if decision.accept else None
        confusion[(truth, predicted)] = confusion.get((truth, predicted), 0) + 1
        if predicted == truth:
            correct += 1
    print(f"\npanel identification accuracy: {correct / len(evaluation):.1%} "
          f"over {len(evaluation)} held-out reads")
    print("confusion (true -> predicted):")
    for (truth, predicted), count in sorted(confusion.items(), key=lambda item: str(item[0])):
        print(f"  {str(truth):18s} -> {str(predicted):18s}: {count}")

    # Bonus: decode a couple of accepted reads with the pure-signal Viterbi
    # basecaller and confirm they map back to the genome the panel picked.
    print("\nViterbi basecalling sanity check (no ground truth used):")
    basecaller = EventViterbiBasecaller(kmer_model=kmer_model)
    aligners = {name: ReferenceAligner(genome) for name, genome in panel_genomes.items()}
    checked = 0
    for truth, read in evaluation:
        if truth is None or checked >= 3:
            continue
        decision = panel.classify(read.signal_pa)
        if not decision.accept or decision.best_target != truth:
            continue
        called = basecaller.basecall_signal(read.signal_pa)
        alignment = aligners[truth].map(called.sequence)
        status = "maps back to its genome" if alignment is not None else "did not map"
        print(f"  {read.read_id}: panel={decision.best_target}, "
              f"viterbi called {called.n_bases} bases, {status}")
        checked += 1


if __name__ == "__main__":
    main()
