#!/usr/bin/env python3
"""Hardware design-space exploration for the SquiggleFilter ASIC.

Uses the area/power/latency models calibrated to the paper's Table 4 and
Section 7 results to answer the questions a hardware architect would ask
before taping out:

* How do area, power and latency scale with the number of PEs per tile and
  the number of tiles?
* Which epidemic viruses fit the provisioned 100 KB reference buffer
  (Figure 10), and what latency does each imply?
* How much sequencer throughput growth can each configuration absorb before
  Read Until stops covering every pore (Figure 21)?

Run with:  python examples/hardware_design_space.py
"""

from __future__ import annotations

from repro.basecall.performance import MINION_MAX_BASES_PER_S, basecaller_performance
from repro.genomes.catalog import EPIDEMIC_VIRUSES, supported_by_filter
from repro.hardware.asic import AsicModel, synthesis_table
from repro.hardware.performance import accelerator_performance
from repro.pipeline.scalability import scalability_analysis, speedup_table


def print_table(rows, columns, title):
    print(f"\n== {title} ==")
    header = " | ".join(f"{column:>24}" for column in columns)
    print(header)
    print("-" * len(header))
    for row in rows:
        print(" | ".join(f"{str(row[column]):>24}" for column in columns))


def main() -> None:
    # ---- Table 4: the provisioned design ------------------------------------
    provisioned = AsicModel()
    rows = [
        {
            "element": row["element"],
            "area_mm2": f"{row['area_mm2']:.3f}",
            "power_w": f"{row['power_w']:.3f}",
        }
        for row in synthesis_table(provisioned)
    ]
    print_table(rows, ["element", "area_mm2", "power_w"], "ASIC synthesis (Table 4)")

    # ---- PE-count / tile-count sweep -----------------------------------------
    design_rows = []
    for n_pes in (1000, 2000, 4000):
        for n_tiles in (1, 5, 10):
            model = AsicModel(n_pes_per_tile=n_pes, n_tiles=n_tiles)
            performance = accelerator_performance(30_000, query_samples=n_pes, model=model)
            design_rows.append(
                {
                    "PEs/tile": n_pes,
                    "tiles": n_tiles,
                    "area_mm2": f"{model.total_area_mm2:.2f}",
                    "power_w": f"{model.total_power_w:.2f}",
                    "latency_ms": f"{performance.latency_ms:.4f}",
                    "Msamples/s": f"{performance.total_throughput_samples_per_s / 1e6:.0f}",
                }
            )
    print_table(
        design_rows,
        ["PEs/tile", "tiles", "area_mm2", "power_w", "latency_ms", "Msamples/s"],
        "Design-space sweep (SARS-CoV-2 reference)",
    )

    # ---- Which viruses fit, and at what latency (Figure 10) ------------------
    virus_rows = []
    for record in sorted(EPIDEMIC_VIRUSES, key=lambda r: r.genome_length):
        fits = supported_by_filter(record)
        latency = (
            f"{accelerator_performance(record.genome_length).latency_ms:.3f}"
            if fits
            else "-"
        )
        virus_rows.append(
            {
                "virus": record.name,
                "genome_bases": record.genome_length,
                "fits_buffer": fits,
                "latency_ms": latency,
            }
        )
    print_table(
        virus_rows,
        ["virus", "genome_bases", "fits_buffer", "latency_ms"],
        "Virus catalog vs the 100 KB reference buffer (Figure 10)",
    )

    # ---- Scalability headroom (Figure 21) -------------------------------------
    points = scalability_analysis(scale_factors=(1, 2, 5, 10, 20, 50, 100))
    rows = [
        {
            "classifier": row["classifier"],
            "sequencer_scale": f"{row['scale_factor']:.0f}x",
            "pores_with_read_until": f"{row['read_until_pore_fraction']:.1%}",
            "speedup_vs_control": f"{row['speedup']:.2f}x",
        }
        for row in speedup_table(points)
    ]
    print_table(
        rows,
        ["classifier", "sequencer_scale", "pores_with_read_until", "speedup_vs_control"],
        "Read Until benefit vs sequencer throughput growth (Figure 21)",
    )

    jetson = basecaller_performance("guppy_lite", "jetson_xavier")
    headroom = accelerator_performance(30_000).total_throughput_bases_per_s / MINION_MAX_BASES_PER_S
    print("\nSummary:")
    print(f"  edge GPU basecalling covers {jetson.minion_fraction:.0%} of one MinION today;")
    print(f"  the 5-tile SquiggleFilter has ~{headroom:.0f}x headroom over one MinION, so the")
    print("  Read Until benefit survives the projected 10-100x sequencer throughput growth.")


if __name__ == "__main__":
    main()
