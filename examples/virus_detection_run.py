#!/usr/bin/env python3
"""End-to-end portable virus detection run (paper Figure 4 / Section 5).

Simulates the deployment the paper targets — upgraded to the programmable
multi-target scenario: the device is programmed with a **3-virus
TargetPanel** (a coronavirus-like reference plus two decoy respiratory
viruses), a specimen containing a novel strain of one panel member at low
abundance is sequenced with Read Until, and every read prefix is classified
against *all three* targets in a single batched sDTW pass (per-target costs
are bit-identical to three independent filters). The session reports which
panel member the accepted reads attribute to; reads that survive are
assembled into the circulating strain's consensus and its mutations relative
to the on-device reference are reported.

Run with:  python examples/virus_detection_run.py
"""

from __future__ import annotations

from repro.assembly.consensus import ReferenceGuidedAssembler
from repro.core.panel import TargetPanel
from repro.genomes.mutate import apply_mutations, random_mutations
from repro.genomes.sequences import random_genome
from repro.pore_model.kmer_model import KmerModel
from repro.runtime import RunConfig, open_session
from repro.sequencer.reads import ReadGenerator, ReadLengthModel, SpecimenMixture

N_STRAIN_MUTATIONS = 20          # Table 2: strains carry ~17-23 substitutions
VIRAL_FRACTION = 0.05            # enriched specimen so the example reaches useful depth quickly
PREFIX_SAMPLES = 1200
CHUNK_SAMPLES = 400
N_READS = 500


def main() -> None:
    kmer_model = KmerModel(seed=941)

    # The panel programmed on the device: the reference genome of the virus
    # we are hunting plus two other circulating respiratory viruses. All
    # three are screened at once — several small genomes share the same
    # 100 KB reference buffer one SARS-CoV-2 genome occupies.
    reference_genome = random_genome(2000, seed=2021)
    panel_genomes = {
        "coronavirus_like": reference_genome,
        "influenza_like": random_genome(1400, seed=2023),
        "rsv_like": random_genome(1700, seed=2024),
    }
    panel = TargetPanel.from_genomes(panel_genomes, kmer_model=kmer_model)

    # The strain actually circulating differs from the on-device reference by
    # a handful of substitutions.
    mutations = random_mutations(reference_genome, substitutions=N_STRAIN_MUTATIONS, seed=5)
    strain_genome = apply_mutations(reference_genome, mutations)
    background_genome = random_genome(16_000, seed=2022)

    print("== Portable virus detection run (3-virus panel) ==")
    for name, length in zip(panel.names, panel.lengths):
        print(f"panel target {name:18s}: {len(panel_genomes[name])} bases "
              f"({int(length)} reference columns)")
    print(f"circulating strain  : {len(strain_genome)} bases, "
          f"{len(mutations)} substitutions vs the coronavirus_like reference")
    print(f"specimen viral load : {VIRAL_FRACTION:.1%}")
    print(f"panel buffer        : {panel.buffer_bytes() / 1024:.1f} KB "
          f"({'fits' if panel.fits_buffer() else 'exceeds'} the 100 KB per-tile budget)")

    # --- The specimen and sequencing run ------------------------------------
    mixture = SpecimenMixture.two_component(
        target_name="strain",
        target_genome=strain_genome,
        background_name="host",
        background_genome=background_genome,
        target_fraction=VIRAL_FRACTION,
    )
    generator = ReadGenerator(
        mixture,
        kmer_model=kmer_model,
        length_model=ReadLengthModel(mean_bases=450, sigma=0.25, min_bases=300, max_bases=1000),
        seed=99,
    )

    # One declarative RunConfig describes the whole session: the panel, the
    # decision prefix, the chunk geometry, the execution backend. Calibrate
    # one shared ejection threshold on the panel's best-target cost with
    # labelled calibration reads (in practice: a quick software sweep on the
    # first minutes of sequencing); the session streams chunks through the
    # batched engine, scoring all three targets per wavefront, and owns the
    # backend lifecycle end to end.
    calibration = generator.generate_balanced(15)
    run_config = RunConfig(
        reference=panel,
        prefix_samples=PREFIX_SAMPLES,
        chunk_samples=CHUNK_SAMPLES,
        batch=True,
    )
    with open_session(run_config) as session:
        threshold = session.calibrate(
            [read.signal_pa for read in calibration if read.is_target],
            [read.signal_pa for read in calibration if not read.is_target],
        )
        print(f"\nprogrammed ejection threshold: {threshold:,.0f}")

        reads = generator.generate(N_READS)
        n_target = sum(1 for read in reads if read.is_target)
        print(f"sequencing {len(reads)} reads ({n_target} from the target strain)...")

        # assembled below, against the attributed member
        result = session.run(reads, target_genome=reference_genome)

    print("\n-- Read Until session (chunk-driven, one wavefront per round) --")
    print(f"reads processed : {result.session.n_reads}")
    print(f"reads ejected   : {result.session.n_ejected}")
    print(f"target recall   : {result.recall:.3f}")
    print(f"false positive rate: {result.false_positive_rate:.3f}")
    print(f"sequencing pore-time: {result.runtime_s / 60:.1f} pore-minutes")

    per_target = result.streaming.get("per_target_accepts", {})
    print("\naccepted reads per panel target:")
    for name in panel.names:
        print(f"  {name:18s}: {per_target.get(name, 0)}")
    if not per_target:
        print("no reads survived the filter; nothing to assemble")
        return
    detected = max(per_target, key=per_target.get)
    print(f"detected panel member: {detected}")

    # --- Assembly / variant report vs the attributed reference ---------------
    kept_reads = [
        outcome.read for outcome in result.session.outcomes if not outcome.ejected
    ]
    assembler = ReferenceGuidedAssembler(panel_genomes[detected], seed=11)
    assembly = assembler.assemble(kept_reads)
    print("\n-- Reference-guided assembly (off the critical path) --")
    print(f"reads used      : {assembly.n_reads_used} "
          f"(+{assembly.n_reads_unaligned} discarded as unalignable)")
    print(f"mean depth      : {assembly.mean_depth:.1f}x")
    print(f"covered >=5x    : {assembly.breadth_of_coverage:.1%} of the genome")
    print(f"variants called : {assembly.n_variants}")

    true_positions = set(mutations.positions())
    called_positions = {variant.position for variant in assembly.variants}
    recovered = len(true_positions & called_positions)
    print(f"strain mutations recovered: {recovered}/{len(true_positions)}")
    comparison = assembler.compare_to_truth(assembly, strain_genome)
    print(f"consensus identity vs true strain: {comparison['identity']:.4%}")


if __name__ == "__main__":
    main()
