#!/usr/bin/env python3
"""End-to-end portable virus detection run (paper Figure 4 / Section 5).

Simulates the full scenario the paper targets: a specimen containing a novel
SARS-CoV-2-like strain at low abundance in host background, sequenced on a
MinION-class device with Read Until driven by the SquiggleFilter hardware
accelerator model. Reads that survive the filter are basecalled, aligned and
assembled into the strain's consensus genome, and the strain's mutations
relative to the on-device reference are reported.

Run with:  python examples/virus_detection_run.py
"""

from __future__ import annotations

from repro.assembly.consensus import ReferenceGuidedAssembler
from repro.core.reference import ReferenceSquiggle
from repro.genomes.mutate import apply_mutations, random_mutations
from repro.genomes.sequences import random_genome
from repro.hardware.accelerator import AcceleratorConfig, SquiggleFilterAccelerator
from repro.hardware.performance import accelerator_performance
from repro.pipeline.read_until import ReadUntilPipeline
from repro.pore_model.kmer_model import KmerModel
from repro.sequencer.reads import ReadGenerator, ReadLengthModel, SpecimenMixture

N_STRAIN_MUTATIONS = 20          # Table 2: strains carry ~17-23 substitutions
VIRAL_FRACTION = 0.05            # enriched specimen so the example reaches useful depth quickly
PREFIX_SAMPLES = 1200
N_READS = 500


def main() -> None:
    kmer_model = KmerModel(seed=941)

    # Reference genome known ahead of time (what gets programmed on the device).
    reference_genome = random_genome(2000, seed=2021)
    # The strain actually circulating differs by a handful of substitutions.
    mutations = random_mutations(reference_genome, substitutions=N_STRAIN_MUTATIONS, seed=5)
    strain_genome = apply_mutations(reference_genome, mutations)
    background_genome = random_genome(16_000, seed=2022)

    print("== Portable virus detection run ==")
    print(f"on-device reference : {len(reference_genome)} bases")
    print(f"circulating strain  : {len(strain_genome)} bases, "
          f"{len(mutations)} substitutions vs reference")
    print(f"specimen viral load : {VIRAL_FRACTION:.1%}")

    # --- The accelerator -----------------------------------------------------
    reference = ReferenceSquiggle.from_genome(reference_genome, kmer_model=kmer_model)
    accelerator = SquiggleFilterAccelerator(
        reference, config=AcceleratorConfig(n_tiles=5, n_pes_per_tile=PREFIX_SAMPLES)
    )
    performance = accelerator_performance(len(reference_genome), query_samples=PREFIX_SAMPLES)
    print("\n-- SquiggleFilter accelerator --")
    print(f"area  : {accelerator.area_mm2():.2f} mm^2   power: {accelerator.power_w():.2f} W")
    print(f"classification latency : {performance.latency_ms:.3f} ms")
    print(f"aggregate throughput   : {performance.total_throughput_samples_per_s / 1e6:.1f} M samples/s "
          f"({performance.minion_headroom:.0f}x a MinION's maximum output)")

    # --- The specimen and sequencing run ------------------------------------
    mixture = SpecimenMixture.two_component(
        target_name="strain",
        target_genome=strain_genome,
        background_name="host",
        background_genome=background_genome,
        target_fraction=VIRAL_FRACTION,
    )
    generator = ReadGenerator(
        mixture,
        kmer_model=kmer_model,
        length_model=ReadLengthModel(mean_bases=450, sigma=0.25, min_bases=300, max_bases=1000),
        seed=99,
    )

    # Calibrate the ejection threshold with labelled calibration reads (in
    # practice: a quick software sweep on the first minutes of sequencing).
    calibration = generator.generate_balanced(15)
    threshold = accelerator.calibrate_threshold(
        [read.signal_pa for read in calibration if read.is_target],
        [read.signal_pa for read in calibration if not read.is_target],
        prefix_samples=PREFIX_SAMPLES,
    )
    print(f"\nprogrammed ejection threshold: {threshold:,.0f}")

    # The pipeline streams raw-signal chunks through the Read Until simulator;
    # the accelerator model exposes `classify(signal, prefix_samples=...)`, so
    # the streaming API adapts it automatically (wait until the prefix has
    # arrived on the wire, then decide in one accelerator pass).
    reads = generator.generate(N_READS)
    n_target = sum(1 for read in reads if read.is_target)
    print(f"sequencing {len(reads)} reads ({n_target} from the target strain)...")

    pipeline = ReadUntilPipeline(
        accelerator,
        target_genome=reference_genome,
        prefix_samples=PREFIX_SAMPLES,
        chunk_samples=400,
        assembler=ReferenceGuidedAssembler(reference_genome, seed=11),
    )
    result = pipeline.run(reads)

    print("\n-- Read Until session (chunk-driven) --")
    print(f"reads processed : {result.session.n_reads}")
    print(f"reads ejected   : {result.session.n_ejected}")
    print(f"target recall   : {result.recall:.3f}")
    print(f"false positive rate: {result.false_positive_rate:.3f}")
    print(f"sequencing pore-time: {result.runtime_s / 60:.1f} pore-minutes")
    print(f"simulator wall-clock: {result.streaming['wall_clock_s'] / 60:.1f} minutes "
          f"({result.streaming['reads_finished']} reads streamed)")

    # --- Assembly / variant report -------------------------------------------
    assembly = result.assembly
    if assembly is None:
        print("no reads survived the filter; nothing to assemble")
        return
    print("\n-- Reference-guided assembly (off the critical path) --")
    print(f"reads used      : {assembly.n_reads_used} "
          f"(+{assembly.n_reads_unaligned} discarded as unalignable)")
    print(f"mean depth      : {assembly.mean_depth:.1f}x")
    print(f"covered >=5x    : {assembly.breadth_of_coverage:.1%} of the genome")
    print(f"variants called : {assembly.n_variants}")

    true_positions = set(mutations.positions())
    called_positions = {variant.position for variant in assembly.variants}
    recovered = len(true_positions & called_positions)
    print(f"strain mutations recovered: {recovered}/{len(true_positions)}")
    comparison = ReferenceGuidedAssembler(reference_genome).compare_to_truth(
        assembly, strain_genome
    )
    print(f"consensus identity vs true strain: {comparison['identity']:.4%}")


if __name__ == "__main__":
    main()
