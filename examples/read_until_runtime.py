#!/usr/bin/env python3
"""Read Until operating-point exploration (paper Figure 17).

Reproduces, at laptop scale, the analysis behind Figure 17: sweep the sDTW
ejection threshold for several read-prefix lengths, measure classification
accuracy at every operating point, feed each point into the analytical
sequencing-runtime model, and report the threshold/prefix combination that
minimizes time-to-coverage. Finishes with the multi-stage filter of
Section 4.6, run two ways: batch-classified for the analytical runtime model,
then *streamed* through the chunk-driven Read Until pipeline, where each
stage fires as soon as its prefix has arrived on the wire and clear
non-targets are ejected on an early chunk.

Closes with the batched execution engine: the same session run with one
vectorized sDTW wavefront across all channels per chunk round
(``repro.batch``), whose per-round occupancy trace drives the ASIC
multi-tile dispatch model.

Run with:  python examples/read_until_runtime.py
"""

from __future__ import annotations

from repro.analysis.sweeps import accuracy_sweep
from repro.hardware.scheduler import TileScheduler
from repro.pipeline.read_until import ReadUntilPipeline
from repro.core.filter import MultiStageSquiggleFilter, SquiggleFilter
from repro.core.reference import ReferenceSquiggle
from repro.genomes.sequences import random_genome
from repro.runtime import RunConfig, open_session
from repro.pipeline.runtime_model import (
    ReadUntilModelConfig,
    best_runtime,
    runtime_from_decisions,
    runtime_vs_threshold,
    sequencing_runtime_s,
)
from repro.pore_model.kmer_model import KmerModel
from repro.sequencer.reads import ReadGenerator, ReadLengthModel, SpecimenMixture

PREFIX_LENGTHS = (500, 1000, 2000)
N_READS_PER_CLASS = 25


def build_reads(seed: int = 13):
    kmer_model = KmerModel(seed=941)
    target_genome = random_genome(2400, seed=seed)       # lambda-phage-scale target
    background_genome = random_genome(16_000, seed=seed + 1)
    mixture = SpecimenMixture.two_component(
        "lambda", target_genome, "human", background_genome, target_fraction=0.01
    )
    generator = ReadGenerator(
        mixture,
        kmer_model=kmer_model,
        length_model=ReadLengthModel(mean_bases=600, sigma=0.2, min_bases=350, max_bases=1400),
        seed=seed + 2,
    )
    reads = generator.generate_balanced(N_READS_PER_CLASS)
    return kmer_model, target_genome, reads


def main() -> None:
    kmer_model, target_genome, reads = build_reads()
    target_signals = [read.signal_pa for read in reads if read.is_target]
    background_signals = [read.signal_pa for read in reads if not read.is_target]

    reference = ReferenceSquiggle.from_genome(target_genome, kmer_model=kmer_model)
    squiggle_filter = SquiggleFilter(reference, prefix_samples=max(PREFIX_LENGTHS))

    model = ReadUntilModelConfig(
        genome_length_bases=len(target_genome),
        viral_fraction=0.01,
        mean_target_read_bases=600,
        mean_background_read_bases=1800,
        decision_latency_s=4.3e-5,  # SquiggleFilter's hardware latency
    )
    control_runtime = sequencing_runtime_s(model, use_read_until=False)
    print("== Read Until operating-point exploration ==")
    print(f"time to 30x coverage WITHOUT Read Until: {control_runtime / 60:.1f} minutes\n")

    # ---- Figure 17a/b: accuracy sweep + runtime model per prefix length ----
    sweep = accuracy_sweep(
        squiggle_filter, target_signals, background_signals, PREFIX_LENGTHS, n_thresholds=61
    )
    best_single = None
    for prefix_sweep in sweep:
        prefix_model = model.with_(decision_prefix_samples=prefix_sweep.prefix_samples)
        rows = runtime_vs_threshold(prefix_sweep.sweep, prefix_model)
        best = best_runtime(rows)
        speedup = control_runtime / best["runtime_s"]
        print(
            f"prefix {prefix_sweep.prefix_samples:5d} samples | "
            f"max F1 {prefix_sweep.max_f1:.3f} | "
            f"best runtime {best['runtime_s'] / 60:6.1f} min "
            f"(recall {best['recall']:.2f}, FPR {best['false_positive_rate']:.2f}) | "
            f"{speedup:4.1f}x faster than control"
        )
        if best_single is None or best["runtime_s"] < best_single[1]["runtime_s"]:
            best_single = (prefix_sweep.prefix_samples, best)

    assert best_single is not None
    print(
        f"\nbest single-stage configuration: prefix {best_single[0]} samples, "
        f"threshold {best_single[1]['threshold']:,.0f} -> "
        f"{best_single[1]['runtime_s'] / 60:.1f} minutes"
    )

    # ---- Section 4.6: multi-stage filtering ---------------------------------
    multistage = MultiStageSquiggleFilter.calibrated(
        reference,
        target_signals,
        background_signals,
        prefix_lengths=PREFIX_LENGTHS,
    )
    decisions = multistage.classify_batch([read.signal_pa for read in reads])
    multistage_runtime = runtime_from_decisions(
        decisions,
        [read.is_target for read in reads],
        model.with_(decision_prefix_samples=max(PREFIX_LENGTHS)),
    )
    print("\n-- multi-stage filter --")
    stage_histogram = {}
    for decision in decisions:
        if not decision.accept:
            stage_histogram[decision.stage] = stage_histogram.get(decision.stage, 0) + 1
    print(f"ejections per stage (stage -> count): {dict(sorted(stage_histogram.items()))}")
    print(f"modelled runtime: {multistage_runtime / 60:.1f} minutes")
    improvement = (best_single[1]["runtime_s"] - multistage_runtime) / best_single[1]["runtime_s"]
    print(f"improvement over best single threshold: {improvement:+.1%} "
          "(the paper reports a further ~13% saving)")

    # ---- The same filter, streamed chunk by chunk --------------------------
    # Through the streaming pipeline each stage fires at its own chunk
    # boundary, so the per-stage ejections above happen *during* sequencing:
    # a read rejected by stage 0 only ever occupied the pore for the first
    # 500-sample chunk (plus the ~43 us decision latency).
    pipeline = ReadUntilPipeline(
        multistage,
        target_genome,
        chunk_samples=min(PREFIX_LENGTHS),
        assemble=False,
    )
    result = pipeline.run(reads)
    streamed_histogram = {}
    for outcome in result.session.outcomes:
        if outcome.ejected and outcome.decision is not None:
            stage = outcome.decision.stage
            streamed_histogram[stage] = streamed_histogram.get(stage, 0) + 1
    print("\n-- multi-stage filter, streamed through the chunk simulator --")
    print(f"ejections per stage (stage -> count): {dict(sorted(streamed_histogram.items()))}")
    print(f"mean background samples sequenced: "
          f"{result.session.mean_nontarget_sequenced_samples:,.0f}")
    print(f"pore-time: {result.runtime_s / 60:.1f} pore-minutes "
          f"(recall {result.recall:.2f})")

    # ---- Batched wavefront: all channels advance in lockstep ---------------
    # One declarative RunConfig describes the whole run — reference, prefix,
    # chunk geometry, channel count, execution backend — and open_session
    # turns it into the runtime object that owns calibration, lazy backend
    # spawn and teardown. The session classifies every undecided channel of
    # a polling round with one vectorized sDTW wavefront (repro.batch);
    # decisions are identical to the scalar path. The engine's per-round
    # occupancy trace then drives the ASIC multi-tile dispatch model with
    # the bursty request pattern lockstep execution really produces.
    run_config = RunConfig(
        reference=reference,
        prefix_samples=best_single[0],
        chunk_samples=min(PREFIX_LENGTHS),
        n_channels=8,
        batch=True,
    )
    with open_session(run_config) as session:
        threshold = session.calibrate(target_signals, background_signals)
        batched_result = session.run(reads, target_genome=target_genome)
    occupancy = batched_result.streaming["batch_occupancy"]
    print("\n-- batched wavefront across 8 channels --")
    print(f"recall {batched_result.recall:.2f}, {len(occupancy)} chunk rounds, "
          f"peak {batched_result.streaming['peak_batch_lanes']} concurrent lanes")
    scheduler = TileScheduler(n_tiles=2)
    stats = scheduler.simulate_batch_trace(
        occupancy, batched_result.streaming["chunk_duration_s"]
    )
    print(f"ASIC dispatch on the real batch trace: {stats.n_requests} requests, "
          f"mean tile utilization {stats.mean_utilization:.2%}, "
          f"max queueing delay {stats.max_waiting_ms:.3f} ms")

    # ---- The same session on the sharded multi-process backend -------------
    # Execution backends are pluggable behind the engine's lane manager:
    # "sharded" stripes the lanes across a persistent pool of worker
    # processes (shared-memory DP state, only query chunks and cost
    # snapshots on the pipes), so genome-scale references scale with the
    # core count. Switching is one with_() on the config — decisions are
    # bit-identical to the numpy backend; the assertion below checks
    # exactly that on this session.
    sharded_config = run_config.with_(backend="sharded", workers=2, threshold=threshold)
    with open_session(sharded_config) as sharded_session:
        sharded_result = sharded_session.run(reads, target_genome=target_genome)
    numpy_decisions = {
        o.read.read_id: (o.ejected, o.decision.cost if o.decision else None)
        for o in batched_result.session.outcomes
    }
    sharded_decisions = {
        o.read.read_id: (o.ejected, o.decision.cost if o.decision else None)
        for o in sharded_result.session.outcomes
    }
    assert sharded_decisions == numpy_decisions
    print("\n-- sharded execution backend (2 worker processes) --")
    print(f"backend: {sharded_result.streaming['backend']}, "
          f"recall {sharded_result.recall:.2f} — decisions bit-identical "
          "to the numpy backend")


if __name__ == "__main__":
    main()
