#!/usr/bin/env python3
"""Autotuning walkthrough: backend="auto" end to end.

Backend choice, worker counts, column tiling and the exactness-preserving
prune/lower-bound layers all have host- and workload-dependent payoffs.
``RunConfig(backend="auto")`` hands the choice to :mod:`repro.tune`, which
probes each candidate operating point on a synthetic workload of the run's
shape and caches the verdict per (host, shape) key. This walkthrough:

1. runs the probe sweep explicitly and prints the probe table — every
   candidate point with its measured cell rate, fastest first;
2. opens a ``backend="auto"`` session, streams a seeded flowcell through
   it, and shows ``summary()["tuned"]`` — the chosen point and whether it
   came from probes or the cache;
3. repeats the run to demonstrate the cache hit (second resolution costs
   ~nothing), and shows the decisions are bit-identical to pinning the
   chosen backend by hand.

Run with:  python examples/autotune_run.py
(The tuning cache lives at ~/.cache/repro/tune.json; this example points
it at a temporary file so it leaves your real cache alone. Clear a real
cache with `repro tune --clear-cache`.)
"""

from __future__ import annotations

import os
import tempfile
import time

with tempfile.TemporaryDirectory() as _scratch:
    os.environ["REPRO_TUNE_CACHE"] = os.path.join(_scratch, "tune.json")

    from repro.genomes.sequences import random_genome
    from repro.runtime import RunConfig, open_session
    from repro.sequencer.reads import ReadGenerator, ReadLengthModel, SpecimenMixture
    from repro.tune import tune_config

    def print_table(rows, columns, title):
        print(f"\n== {title} ==")
        header = " | ".join(f"{column:>22}" for column in columns)
        print(header)
        print("-" * len(header))
        for row in rows:
            print(" | ".join(f"{str(row.get(column, '')):>22}" for column in columns))

    def main() -> None:
        target = random_genome(2400, seed=7)
        config = RunConfig(
            genome=target,
            threshold=None,  # calibrated below
            prefix_samples=800,
            chunk_samples=400,
            n_channels=8,
            backend="auto",
        )

        # ---- 1. The probe sweep, explicitly --------------------------------
        outcome = tune_config(config)
        decision = outcome.decision
        print(
            f"probed {decision.n_probes} candidate(s) in {decision.probed_s:.3f}s "
            f"(budget {config.tune_budget_s:g}s)"
        )
        print(f"cache key: {outcome.key}")
        print_table(
            outcome.table(),
            ["candidate", "seconds", "cells_per_s", "effective_cells_per_s"],
            "probe table (fastest first)",
        )
        print(
            f"\nchosen point: backend={decision.backend} workers={decision.workers} "
            f"tile_columns={decision.tile_columns} prune={decision.prune} "
            f"lb_cascade={decision.lb_cascade}"
        )

        # ---- 2. A backend="auto" session end to end ------------------------
        background = random_genome(16000, seed=8)
        mixture = SpecimenMixture.two_component(
            "target", target, "background", background, 0.25
        )
        generator = ReadGenerator(
            mixture,
            length_model=ReadLengthModel(mean_bases=500, sigma=0.2),
            seed=9,
        )
        calibration = generator.generate_balanced(10)
        reads = generator.generate(40)

        with open_session(config) as session:
            session.calibrate(
                [r.signal_pa for r in calibration if r.is_target],
                [r.signal_pa for r in calibration if not r.is_target],
            )
            result = session.run(reads, target_genome=target)
            tuned = session.summary()["tuned"]
        print(
            f"\nfirst session: backend resolved to {tuned['backend']} "
            f"(cache_hit={tuned['cache_hit']}), recall={result.recall:.2f}, "
            f"ejected {result.session.n_ejected}/{result.session.n_reads} reads"
        )
        first_decisions = {
            o.read.read_id: (o.ejected, o.decision.cost if o.decision else None)
            for o in result.session.outcomes
        }

        # ---- 3. Repeat run: cache hit, identical decisions ------------------
        start = time.perf_counter()
        with open_session(config) as session:
            session.calibrate(
                [r.signal_pa for r in calibration if r.is_target],
                [r.signal_pa for r in calibration if not r.is_target],
            )
            result2 = session.run(reads, target_genome=target)
            tuned2 = session.summary()["tuned"]
        print(
            f"second session: cache_hit={tuned2['cache_hit']} "
            f"(resolution was ~free; run took {time.perf_counter() - start:.2f}s)"
        )
        second_decisions = {
            o.read.read_id: (o.ejected, o.decision.cost if o.decision else None)
            for o in result2.session.outcomes
        }
        assert second_decisions == first_decisions, "tuning must never change decisions"
        print("decision check: auto runs are bit-identical across resolutions ✓")

    main()
