#!/usr/bin/env python3
"""End-to-end tour of the ``repro.serve`` classification service.

Starts the service on a background thread (ephemeral port), registers two
tenants — each a named, serializable :class:`~repro.runtime.RunConfig` —
streams each tenant's seeded flowcell through the HTTP API round by round,
then prints the per-tenant summaries and a slice of the Prometheus-style
``/metrics`` page before draining the server.

Everything here also works against a standalone server started with::

    repro serve --port 8093 --config examples/run_config.json

by replacing ``BackgroundServer`` with ``ServeClient("127.0.0.1", 8093)``.

Run with:  PYTHONPATH=src python examples/serve_client.py
"""

from __future__ import annotations

from repro.serve import BackgroundServer
from repro.serve.client import ServeClient
from repro.serve.workload import build_tenant_workloads, replay_flowcell


def main() -> None:
    # Two deterministic tenants over a shared genome pair: same calibrated
    # threshold, independent seeded read streams, distinct labels.
    workloads = build_tenant_workloads(2, reads_per_tenant=5)

    with BackgroundServer(max_concurrency=2) as server:
        print(f"service listening on 127.0.0.1:{server.port}")
        client = ServeClient("127.0.0.1", server.port)

        print("\n== sessions ==")
        summaries = []
        for workload in workloads:
            session_id = client.create_session(workload.config)
            decisions, rounds = replay_flowcell(
                lambda chunks: client.submit_round(session_id, chunks)[0],
                workload,
            )
            ejected = sum(1 for record in decisions.values() if record[0] == "eject")
            final = client.close_session(session_id)
            summaries.append(final)
            print(
                f"{session_id}: {rounds} rounds, {len(decisions)} reads decided "
                f"({ejected} ejected), label={final['label']!r}"
            )

        print("\n== /health ==")
        print(client.health())

        print("\n== /metrics (rounds + latency quantiles) ==")
        for line in client.metrics_text().splitlines():
            if line.startswith(
                ("repro_serve_rounds_total", "repro_serve_round_latency_seconds{")
            ):
                print(line)

        client.close()
    print("\nserver drained cleanly")


if __name__ == "__main__":
    main()
